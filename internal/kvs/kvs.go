// Package kvs is the replicated key-value service layered on the Chord
// overlay — the first real *application* on the overlay kit, and the
// paper's implicit payoff: once lookup() works, a DHT service is a
// handful of additional rules, not a new system.
//
// The service is pure OverLog. A PUT routes to the key's successor via
// the ordinary Chord lookup, the owner writes locally and fans the
// tuple out to its successor list (an R-way replica set), and every
// replica acks back to the requester; the client observes success when
// a quorum of acks arrives. A GET routes to the owner the same way and
// reads the owner's copy; serving a read also pushes the owner's row
// back out to the replica set, so reads repair stale or missing
// replicas as a side effect. Re-replication on churn is driven off the
// overlay itself: a bestSucc delta (Chord noticing a new successor)
// triggers a pull request, and the anti-entropy cycle re-pushes every
// owned key to the current successor list each tKvSync seconds.
//
// Storage honors the paper's soft-state model: kvStore rows carry a
// lease (the table's tuple lifetime) and survive only while their
// owner keeps refreshing them — an owner refreshes its own range and
// its replicas' copies each anti-entropy round, so keys orphaned by
// ownership changes expire instead of lingering forever.
//
// Conflicts resolve by version: every row carries a client-assigned
// version, and a replica only overwrites when the incoming version is
// >= its own. Equal versions re-derive the identical row, which the
// table layer treats as a lease renewal rather than a delta.
package kvs

// Relation names shared with the Go side (client, introspection).
const (
	StoreTable      = "kvStore"      // (@NI, K, V, Ver) — one row per held key
	ParamTable      = "kvParam"      // (@NI, R, Q) — replica factor, write quorum
	PutPendingTable = "kvPutPending" // (@AI, E, K, V, Ver, Req)
	GetPendingTable = "kvGetPending" // (@AI, E, K, Req)
	AckedTable      = "kvAcked"      // (@AI, E, SI) — distinct acks per op
	PutEvent        = "kvPut"        // (@AI, K, V, Ver, Req, E) — client inject
	GetEvent        = "kvGet"        // (@AI, K, Req, E) — client inject
	PutRespEvent    = "kvPutResp"    // (@Req, E, K, Ver)
	GetRespEvent    = "kvGetResp"    // (@Req, E, K, V, Ver); V="-", Ver=0 on miss

	// SuccTable is Chord's successor list — the replica set the service
	// fans writes out to; named here so the introspection side can
	// count the live fan-out without depending on the overlay package.
	SuccTable = "succ"
)

// Replication parameters baked into the spec's defines. Replicas is
// the owner plus the Chord successor list (succSize=4), Quorum the
// ack count a PUT waits for. LeaseSeconds mirrors the kvStore
// materialize lifetime (the parser requires a literal there).
const (
	Replicas     = 5
	Quorum       = 2
	LeaseSeconds = 120
)

// RepairRules names the rules whose firings count as replica repair
// work: read-repair pushes, anti-entropy pushes, and churn-triggered
// pulls. The sysKV introspection column sums their fire counters.
var RepairRules = map[string]bool{"KG6": true, "KS2": true, "KC2": true}

// Source is the KV service in OverLog. It declares only kv* relations
// and builds on the Chord spec's node/pred/succ/bestSucc/lookup/
// lookupResults; compile it together with ChordSource (see
// overlays.ChordKVPlan) or Install it on a running Chord node. This
// package deliberately imports nothing — it is the shared vocabulary
// between the overlay library, the engine's introspection, and the
// Go client, all of which sit at different layers.
const Source = `
/* Replicated key-value store over Chord: successor-list replication
   with quorum acks, read-repair, anti-entropy, churn-triggered pulls. */

materialize(kvStore, 120, infinity, keys(2)).
materialize(kvPutPending, 30, infinity, keys(2)).
materialize(kvGetPending, 30, infinity, keys(2)).
materialize(kvAcked, 30, infinity, keys(2,3)).
materialize(kvParam, infinity, 1, keys(1)).

define(kvReplicas, 5).
define(kvQuorum, 2).
define(tKvSync, 15).

/* Advertise the replication parameters (introspection reads these). */
KV0 kvParam@NI(NI, R, Q) :- periodic@NI(NI, E, 0, 1),
    R := kvReplicas, Q := kvQuorum.

/* PUT: remember the op, route a lookup for the key. The eid E threads
   the whole op; the requester address Req gets the final response. */
KP1 kvPutPending@AI(AI, E, K, V, Ver, Req) :- kvPut@AI(AI, K, V, Ver, Req, E).
KP2 lookup@AI(AI, K, AI, E) :- kvPut@AI(AI, K, V, Ver, Req, E).
KP3 kvWrite@SI(SI, K, V, Ver, AI, E) :- lookupResults@AI(AI, K, S, SI, E),
    kvPutPending@AI(AI, E, K2, V, Ver, Req).

/* Owner write: keep the newer (or equal — lease renewal) version,
   fan out to the successor list, ack the requester. */
KW1 kvStore@NI(NI, K, V, Ver) :- kvWrite@NI(NI, K, V, Ver, AI, E),
    kvStore@NI(NI, K, V0, Ver0), Ver >= Ver0.
KW2 kvStore@NI(NI, K, V, Ver) :- kvWrite@NI(NI, K, V, Ver, AI, E),
    not kvStore@NI(NI, K, V0, Ver0).
KW3 kvRepl@SI(SI, K, V, Ver, AI, E) :- kvWrite@NI(NI, K, V, Ver, AI, E),
    succ@NI(NI, S, SI), SI != NI.
KW4 kvAck@AI(AI, E, NI) :- kvWrite@NI(NI, K, V, Ver, AI, E).

/* Replica write: same version gate; ack only when the push came from
   a PUT in flight (anti-entropy and repair pushes carry AI = "-"). */
KR1 kvStore@NI(NI, K, V, Ver) :- kvRepl@NI(NI, K, V, Ver, AI, E),
    kvStore@NI(NI, K, V0, Ver0), Ver >= Ver0.
KR2 kvStore@NI(NI, K, V, Ver) :- kvRepl@NI(NI, K, V, Ver, AI, E),
    not kvStore@NI(NI, K, V0, Ver0).
KR3 kvAck@AI(AI, E, NI) :- kvRepl@NI(NI, K, V, Ver, AI, E), AI != "-".

/* Quorum: collect distinct acks per op; the count aggregate emits on
   every change, and the response fires when it reaches the quorum. */
KA1 kvAcked@AI(AI, E, SI) :- kvAck@AI(AI, E, SI).
KA2 kvAckCount@AI(AI, E, count<*>) :- kvAcked@AI(AI, E, SI).
KA3 kvPutResp@Req(Req, E, K, Ver) :- kvAckCount@AI(AI, E, C),
    kvPutPending@AI(AI, E, K, V, Ver, Req), C == kvQuorum.

/* GET: route to the owner, read its copy ("-"/0 marks a miss), and
   repair the replica set with the authoritative row on the way out. */
KG1 kvGetPending@AI(AI, E, K, Req) :- kvGet@AI(AI, K, Req, E).
KG2 lookup@AI(AI, K, AI, E) :- kvGet@AI(AI, K, Req, E).
KG3 kvRead@SI(SI, K, AI, E) :- lookupResults@AI(AI, K, S, SI, E),
    kvGetPending@AI(AI, E, K2, Req).
KG4 kvReadResult@AI(AI, E, K, V, Ver) :- kvRead@NI(NI, K, AI, E),
    kvStore@NI(NI, K, V, Ver).
KG5 kvReadResult@AI(AI, E, K, V, Ver) :- kvRead@NI(NI, K, AI, E),
    not kvStore@NI(NI, K, V0, Ver0), V := "-", Ver := 0.
KG6 kvRepl@SI(SI, K, V, Ver, "-", E) :- kvRead@NI(NI, K, AI, E),
    kvStore@NI(NI, K, V, Ver), succ@NI(NI, S, SI), SI != NI.
KG7 kvGetResp@Req(Req, E, K, V, Ver) :- kvReadResult@AI(AI, E, K, V, Ver),
    kvGetPending@AI(AI, E, K2, Req).

/* Anti-entropy and leases: every tKvSync the owner re-pushes each key
   in its range (pred, node] to the current successor list and renews
   its own lease. Before a predecessor is known the node refreshes
   everything it holds — better to over-retain during bootstrap than
   to expire data while the ring is still forming. Copies of keys a
   node no longer owns receive no refresh and expire with the lease. */
KS1 kvSyncEvent@NI(NI, E) :- periodic@NI(NI, E, tKvSync).
KS2 kvRepl@SI(SI, K, V, Ver, "-", E) :- kvSyncEvent@NI(NI, E),
    kvStore@NI(NI, K, V, Ver), node@NI(NI, N), pred@NI(NI, P, PI),
    PI != "-", K in (P, N], succ@NI(NI, S, SI), SI != NI.
KS3 kvStore@NI(NI, K, V, Ver) :- kvSyncEvent@NI(NI, E),
    kvStore@NI(NI, K, V, Ver), node@NI(NI, N), pred@NI(NI, P, PI),
    PI != "-", K in (P, N].
KS4 kvStore@NI(NI, K, V, Ver) :- kvSyncEvent@NI(NI, E),
    kvStore@NI(NI, K, V, Ver), pred@NI(NI, P, PI), PI == "-".

/* Re-replication on churn: a bestSucc delta means the successor set
   changed (a join or a failure); ask the new successor for its store
   so inherited ranges and fresh replicas fill in immediately instead
   of waiting out an anti-entropy round. The receiver pushes every row
   it holds; the version gate keeps newer data, and rows the requester
   should not hold simply expire unrefreshed. */
KC1 kvPullReq@SI(SI, NI) :- bestSucc@NI(NI, S, SI), SI != NI.
KC2 kvRepl@PI(PI, K, V, Ver, "-", "pull") :- kvPullReq@NI(NI, PI),
    kvStore@NI(NI, K, V, Ver).
`
