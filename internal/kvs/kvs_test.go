package kvs_test

import (
	"testing"

	"p2/internal/kvs"
	"p2/internal/overlays"
	"p2/internal/overlog"
	"p2/internal/planner"
)

// TestSourceCompiles gates the spec itself: the KV rules must parse
// and plan both merged with Chord and as an Extend delta over an
// existing Chord plan (the Install path).
func TestSourceCompiles(t *testing.T) {
	plan := overlays.ChordKVPlan(nil)
	for _, tbl := range []string{kvs.StoreTable, kvs.ParamTable, kvs.PutPendingTable, kvs.GetPendingTable, kvs.AckedTable} {
		found := false
		for _, m := range plan.Tables {
			if m.Name == tbl {
				found = true
			}
		}
		if !found {
			t.Fatalf("merged plan is missing table %s", tbl)
		}
	}
	for id := range kvs.RepairRules {
		found := false
		for _, r := range plan.Rules {
			if r.ID == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("repair rule %s not present in the merged plan", id)
		}
	}

	base := planner.MustCompile(overlog.MustParse(overlays.ChordSource), nil)
	if _, _, err := planner.Extend(base, overlog.MustParse(kvs.Source), nil); err != nil {
		t.Fatalf("KV source does not Extend a Chord plan: %v", err)
	}
}
