package overlays

import (
	"fmt"
	"testing"

	"p2/internal/engine"
	"p2/internal/eventloop"
	"p2/internal/simnet"
	"p2/internal/tuple"
	"p2/internal/val"
)

// TestMulticastOverNaradaMesh is the multi-overlay sharing test: the
// Narada mesh spec and the multicast spec compile into ONE dataflow,
// the multicast rules reading the neighbor table Narada maintains
// (§1: "can compile multiple overlay specifications into a single
// dataflow"). A message injected at one node must reach every mesh
// member exactly once.
func TestMulticastOverNaradaMesh(t *testing.T) {
	const n = 10
	plan := NaradaMulticastPlan(nil)
	loop := eventloop.NewSim()
	net := simnet.New(loop, simnet.DefaultConfig())

	var nodes []*engine.Node
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("mc%02d:x", i)
	}
	delivered := make(map[string]int)
	for i := 0; i < n; i++ {
		node := engine.NewNode(addrs[i], loop, net, plan, engine.Options{Seed: int64(i + 1)})
		if err := node.Start(); err != nil {
			t.Fatal(err)
		}
		// Sparse bootstrap: a ring of neighbor hints; Narada's gossip
		// densifies membership from there.
		node.AddFact("env", val.Str(addrs[i]), val.Str("neighbor"), val.Str(addrs[(i+1)%n]))
		addr := addrs[i]
		node.Watch("deliver", func(ev engine.WatchEvent) {
			if ev.Dir == engine.DirDerived {
				delivered[addr]++
			}
		})
		nodes = append(nodes, node)
	}

	// Let the mesh form, then publish one message at node 0.
	loop.RunFor(20)
	nodes[0].InjectTuple(tuple.New("message",
		val.Str(addrs[0]), val.Str("m1"), val.Str("hello mesh"), val.Str("-")))
	loop.RunFor(30)

	for _, a := range addrs {
		if delivered[a] != 1 {
			t.Fatalf("node %s delivered %d times, want exactly 1 (map: %v)",
				a, delivered[a], delivered)
		}
	}

	// A second, distinct message also floods; the first stays deduped.
	nodes[3].InjectTuple(tuple.New("message",
		val.Str(addrs[3]), val.Str("m2"), val.Str("again"), val.Str("-")))
	loop.RunFor(30)
	for _, a := range addrs {
		if delivered[a] != 2 {
			t.Fatalf("node %s delivered %d total, want 2", a, delivered[a])
		}
	}
}

// TestMulticastSpecRequiresMesh documents that the multicast layer is
// deliberately incomplete alone: without a mesh providing neighbor, it
// must not compile.
func TestMulticastSpecRequiresMesh(t *testing.T) {
	if _, err := compileSrc(MeshMulticastSource); err == nil {
		t.Fatal("multicast spec alone should fail to compile (no neighbor table)")
	}
}
