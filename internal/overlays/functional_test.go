package overlays

// Functional tests: each shipped overlay actually *runs* and exhibits
// its defining behaviour on the simulated network. The Chord overlay
// has its own deeper suite in internal/harness.

import (
	"fmt"
	"math/rand"
	"testing"

	"p2/internal/engine"
	"p2/internal/eventloop"
	"p2/internal/overlog"
	"p2/internal/planner"
	"p2/internal/simnet"
	"p2/internal/val"
)

type cluster struct {
	loop  *eventloop.Sim
	net   *simnet.Net
	nodes []*engine.Node
}

func spawn(t *testing.T, src string, n int, prefix string) *cluster {
	t.Helper()
	plan, err := planner.Compile(overlog.MustParse(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	loop := eventloop.NewSim()
	net := simnet.New(loop, simnet.DefaultConfig())
	c := &cluster{loop: loop, net: net}
	for i := 0; i < n; i++ {
		node := engine.NewNode(fmt.Sprintf("%s%02d:x", prefix, i), loop, net, plan,
			engine.Options{Seed: int64(i + 1)})
		if err := node.Start(); err != nil {
			t.Fatal(err)
		}
		c.nodes = append(c.nodes, node)
	}
	return c
}

func TestGossipInfectsEveryone(t *testing.T) {
	const n = 20
	c := spawn(t, GossipSource, n, "g")
	rng := rand.New(rand.NewSource(5))
	addrs := make([]string, n)
	for i, node := range c.nodes {
		addrs[i] = node.Addr()
	}
	for _, node := range c.nodes {
		for _, p := range rng.Perm(n)[:4] {
			if addrs[p] != node.Addr() {
				node.AddFact("peer", val.Str(node.Addr()), val.Str(addrs[p]))
			}
		}
	}
	c.nodes[0].AddFact("rumor", val.Str(addrs[0]), val.Str("r1"), val.Str("data"))

	infected := func() int {
		k := 0
		for _, node := range c.nodes {
			if node.Table("rumor").Len() > 0 {
				k++
			}
		}
		return k
	}
	c.loop.RunFor(10)
	mid := infected()
	if mid < 2 {
		t.Fatalf("infection has not begun: %d", mid)
	}
	c.loop.RunFor(80)
	if got := infected(); got != n {
		t.Fatalf("infected = %d/%d after 90 s", got, n)
	}
}

func TestLinkStateConvergesToShortestPaths(t *testing.T) {
	// A line with a shortcut:
	//   a -1- b -1- c -1- d      and  a -10- d
	// Best a→d must be via b (cost 3), not the direct cost-10 link.
	c := spawn(t, LinkStateSource, 4, "r")
	a, b, cc, d := c.nodes[0], c.nodes[1], c.nodes[2], c.nodes[3]
	link := func(x, y *engine.Node, cost int64) {
		x.AddFact("link", val.Str(x.Addr()), val.Str(y.Addr()), val.Int(cost))
		y.AddFact("link", val.Str(y.Addr()), val.Str(x.Addr()), val.Int(cost))
	}
	link(a, b, 1)
	link(b, cc, 1)
	link(cc, d, 1)
	link(a, d, 10)

	c.loop.RunFor(60)

	bp := a.Table("bestPath")
	var toD []string
	for _, row := range bp.Scan() {
		if row.Field(1).AsStr() == d.Addr() {
			toD = append(toD, fmt.Sprintf("next=%s cost=%d",
				row.Field(2).AsStr(), row.Field(3).AsInt()))
		}
	}
	if len(toD) != 1 {
		t.Fatalf("paths a->d = %v", toD)
	}
	want := fmt.Sprintf("next=%s cost=3", b.Addr())
	if toD[0] != want {
		t.Fatalf("a->d = %s, want %s", toD[0], want)
	}
	// Every node must have a best path to every other node.
	for _, x := range c.nodes {
		for _, y := range c.nodes {
			if x == y {
				continue
			}
			found := false
			for _, row := range x.Table("bestPath").Scan() {
				if row.Field(1).AsStr() == y.Addr() {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s has no path to %s", x.Addr(), y.Addr())
			}
		}
	}
}

func TestLinkStateAdaptsToLinkRemoval(t *testing.T) {
	// Kill the middle of the cheap path; routing must fall back to the
	// expensive direct link once the soft state expires.
	c := spawn(t, LinkStateSource, 3, "r")
	a, b, d := c.nodes[0], c.nodes[1], c.nodes[2]
	link := func(x, y *engine.Node, cost int64) {
		x.AddFact("link", val.Str(x.Addr()), val.Str(y.Addr()), val.Int(cost))
		y.AddFact("link", val.Str(y.Addr()), val.Str(x.Addr()), val.Int(cost))
	}
	link(a, b, 1)
	link(b, d, 1)
	link(a, d, 10)
	c.loop.RunFor(60)

	cost := func() int64 {
		for _, row := range a.Table("bestPath").Scan() {
			if row.Field(1).AsStr() == d.Addr() {
				return row.Field(3).AsInt()
			}
		}
		return -1
	}
	if got := cost(); got != 2 {
		t.Fatalf("initial a->d cost = %d, want 2", got)
	}
	b.Stop() // relay dies
	c.loop.RunFor(90)
	if got := cost(); got != 10 {
		t.Fatalf("post-failure a->d cost = %d, want 10 (direct)", got)
	}
}

func TestNaradaMembershipAndFailure(t *testing.T) {
	const n = 6
	c := spawn(t, NaradaSource, n, "m")
	for i, node := range c.nodes {
		next := c.nodes[(i+1)%n]
		node.AddFact("env", val.Str(node.Addr()), val.Str("neighbor"), val.Str(next.Addr()))
	}
	c.loop.RunFor(30)
	for _, node := range c.nodes {
		if got := node.Table("member").Len(); got != n {
			t.Fatalf("%s knows %d members, want %d", node.Addr(), got, n)
		}
	}
	// Kill one node; survivors must mark it dead within the liveness
	// horizon (20 s silence + probe).
	victim := c.nodes[2]
	victim.Stop()
	c.loop.RunFor(40)
	for _, node := range c.nodes {
		if node == victim {
			continue
		}
		var live bool
		for _, row := range node.Table("member").Scan() {
			if row.Field(1).AsStr() == victim.Addr() {
				live = row.Field(4).AsBool()
			}
		}
		if live {
			t.Fatalf("%s still believes %s is alive", node.Addr(), victim.Addr())
		}
	}
}

func TestNaradaSequenceAdvances(t *testing.T) {
	c := spawn(t, NaradaSource, 2, "m")
	c.nodes[0].AddFact("env", val.Str(c.nodes[0].Addr()), val.Str("neighbor"), val.Str(c.nodes[1].Addr()))
	c.loop.RunFor(31)
	rows := c.nodes[0].Table("sequence").Scan()
	if len(rows) != 1 {
		t.Fatalf("sequence rows = %v", rows)
	}
	// Refresh every 3 s: roughly 10 increments in 31 s (first firing
	// jittered within one period).
	if got := rows[0].Field(1).AsInt(); got < 8 || got > 11 {
		t.Fatalf("sequence = %d after 31 s", got)
	}
}

func TestPingPongMeasuresRTT(t *testing.T) {
	c := spawn(t, PingPongSource, 2, "q")
	a, b := c.nodes[0], c.nodes[1]
	a.AddFact("pingPeer", val.Str(a.Addr()), val.Str(b.Addr()))
	c.loop.RunFor(5)
	rows := a.Table("rtt").Scan()
	if len(rows) != 1 {
		t.Fatalf("rtt rows = %v", rows)
	}
	rtt := rows[0].Field(2).AsFloat()
	lat := c.net.Latency(a.Addr(), b.Addr())
	if rtt < 2*lat || rtt > 2*lat+0.1 {
		t.Fatalf("rtt = %v, want ~%v", rtt, 2*lat)
	}
}
