// Package overlays ships the declarative overlay specifications — the
// OverLog payload this whole system exists to execute.
//
// Chord is the paper's centerpiece (Section 4 and Appendix B); Narada
// mesh maintenance is Appendix A plus the ping rules of §2.3. Gossip,
// link-state (distance-vector) routing, and ping-pong cover the
// "breadth" overlays Section 7 names as ongoing work (epidemics,
// link-state overlays).
//
// The appendix listings contain OCR/typo artifacts; the shipped specs
// fix them and the package tests document each fix:
//
//   - "K := 1I << I + N" reads "K := 1 << I + N" (shifts bind tighter
//     than +, see internal/overlog).
//   - The duplicated rule id SB7 becomes SB7A/SB7B.
//   - F3's bare "node(NI,N)" gains its @NI location.
//   - Appendix B's CM9 joins pendingPing on the *current* ping event's
//     id, which can never match an outstanding ping from an earlier
//     round; the connectivity monitor here keeps a lastHeard timestamp
//     and detects failure by elapsed time, the same mechanism Narada's
//     L2 uses.
//   - Timer constants are defines (the paper does not publish its
//     values); EXPERIMENTS.md records the settings used for each run.
package overlays

import (
	"p2/internal/kvs"
	"p2/internal/overlog"
	"p2/internal/planner"
	"p2/internal/val"
)

// ChordSource is the full Chord DHT in OverLog: lookups, ring
// maintenance with a bounded successor set, finger fixing with eager
// population, joins with retry, stabilization, and connectivity
// monitoring for fault tolerance.
const ChordSource = `
/* ---------------- base tables (Appendix B) ---------------- */
materialize(node,          infinity, 1,   keys(1)).
materialize(landmark,      infinity, 1,   keys(1)).
materialize(finger,        180,      160, keys(2)).
materialize(bestSucc,      infinity, 1,   keys(1)).
materialize(succDist,      15,       100, keys(2)).
materialize(succ,          30,       100, keys(2)).
materialize(pred,          infinity, 1,   keys(1)).
materialize(succCount,     infinity, 1,   keys(1)).
materialize(join,          10,       5,   keys(1)).
materialize(fFix,          60,       160, keys(2)).
materialize(nextFingerFix, infinity, 1,   keys(1)).
materialize(lastHeard,     infinity, 100, keys(2)).

/* ---------------- timer and policy constants ---------------- */
define(tFix,       10).   /* finger fixing period */
define(tStabilize, 5).    /* stabilization period */
define(tPing,      5).    /* connectivity monitoring period */
define(tJoinRetry, 12).   /* re-join attempt period while successorless */
define(tRejoinAll, 60).   /* anti-entropy re-join period (ring merge) */
define(tDead,      20).   /* silence before declaring a peer dead */
define(succSize,   4).    /* successors kept beyond the best one */

/* ---------------- identity ---------------- */
I0 node@NI(NI, N) :- periodic@NI(NI, E, 0, 1), N := f_sha1(NI).

/* ---------------- lookups (Section 4) ---------------- */
L1 lookupResults@R(R,K,S,SI,E) :- node@NI(NI,N), lookup@NI(NI,K,R,E),
   bestSucc@NI(NI,S,SI), K in (N,S].
L2 bestLookupDist@NI(NI,K,R,E,min<D>) :- node@NI(NI,N),
   lookup@NI(NI,K,R,E), finger@NI(NI,I,B,BI), D := K - B - 1, B in (N,K).
L3 lookup@BI(min<BI>,K,R,E) :- node@NI(NI,N),
   bestLookupDist@NI(NI,K,R,E,D), finger@NI(NI,I,B,BI),
   D == K - B - 1, B in (N,K).

/* ---------------- best-successor selection ---------------- */
N1 succEvent@NI(NI,S,SI) :- succ@NI(NI,S,SI).
N2 succEvent@NI(NI,S,SI) :- stabilize@NI(NI,E), succ@NI(NI,S,SI).
N3 succDist@NI(NI,S,D) :- node@NI(NI,N), succEvent@NI(NI,S,SI),
   D := S - N - 1.
N4 bestSuccDist@NI(NI,min<D>) :- succDist@NI(NI,S,D).
N5 bestSucc@NI(NI,S,SI) :- succ@NI(NI,S,SI), bestSuccDist@NI(NI,D),
   node@NI(NI,N), D == S - N - 1.
N6 finger@NI(NI,0,S,SI) :- bestSucc@NI(NI,S,SI).

/* ---------------- successor eviction ---------------- */
S1 succCount@NI(NI,count<*>) :- succ@NI(NI,S,SI).
S2 evictSucc@NI(NI) :- succCount@NI(NI,C), C > succSize.
S3 maxSuccDist@NI(NI,max<D>) :- succ@NI(NI,S,SI), node@NI(NI,N),
   evictSucc@NI(NI), D := S - N - 1.
S4 delete succ@NI(NI,S,SI) :- node@NI(NI,N), succ@NI(NI,S,SI),
   maxSuccDist@NI(NI,D), D == S - N - 1.

/* ---------------- finger fixing (optimized, Appendix B) ---------------- */
F0 nextFingerFix@NI(NI, 0).
F1 fFix@NI(NI,E,I) :- periodic@NI(NI,E,tFix), nextFingerFix@NI(NI,I).
F2 fFixEvent@NI(NI,E,I) :- fFix@NI(NI,E,I).
F3 lookup@NI(NI,K,NI,E) :- fFixEvent@NI(NI,E,I), node@NI(NI,N),
   K := N + 1 << I.
F4 eagerFinger@NI(NI,I,B,BI) :- fFix@NI(NI,E,I),
   lookupResults@NI(NI,K,B,BI,E).
F5 finger@NI(NI,I,B,BI) :- eagerFinger@NI(NI,I,B,BI).
F6 eagerFinger@NI(NI,I,B,BI) :- node@NI(NI,N),
   eagerFinger@NI(NI,I1,B,BI), I := I1 + 1, K := 1 << I + N,
   K in (N,B), BI != NI.
F7 delete fFix@NI(NI,E,I1) :- eagerFinger@NI(NI,I,B,BI),
   fFix@NI(NI,E,I1), I > 0, I1 == I - 1.
F8 nextFingerFix@NI(NI,0) :- eagerFinger@NI(NI,I,B,BI),
   ((I == 159) || (BI == NI)).
F9 nextFingerFix@NI(NI,I) :- node@NI(NI,N), eagerFinger@NI(NI,I1,B,BI),
   I := I1 + 1, K := 1 << I + N, K in (B,N), NI != BI.
/* Appendix B's cycle advances only on lookup results, so one index
   whose fix-lookups keep dying under churn parks the cycle forever and
   the rest of the finger table ages out — a death spiral we observed
   directly. If a fresh fix attempt finds an older outstanding attempt
   for the same index, move on; the straggler may still complete. */
F10 nextFingerFix@NI(NI,I2) :- fFixEvent@NI(NI,E,I), fFix@NI(NI,E1,I),
    E1 != E, I < 159, I2 := I + 1.
F11 nextFingerFix@NI(NI,0) :- fFixEvent@NI(NI,E,I), fFix@NI(NI,E1,I),
    E1 != E, I == 159.

/* ---------------- churn handling: joins ---------------- */
C1 joinEvent@NI(NI,E) :- join@NI(NI,E).
C2 joinReq@LI(LI,N,NI,E) :- joinEvent@NI(NI,E), node@NI(NI,N),
   landmark@NI(NI,LI), LI != "-".
C3 succ@NI(NI,N,NI) :- landmark@NI(NI,LI), joinEvent@NI(NI,E),
   node@NI(NI,N), LI == "-".
C4 lookup@LI(LI,N,NI,E) :- joinReq@LI(LI,N,NI,E).
C5 succ@NI(NI,S,SI) :- join@NI(NI,E), lookupResults@NI(NI,K,S,SI,E).
C6 join@NI(NI,E) :- periodic@NI(NI,E,tJoinRetry),
   not bestSucc@NI(NI,S,SI).
C7 join@NI(NI,E) :- periodic@NI(NI,E,tJoinRetry), bestSucc@NI(NI,S,SI),
   not succ@NI(NI,S2,SI).
/* Anti-entropy: periodically re-join through the landmark even when
   healthy. A re-join on an intact ring is a cheap no-op (the lookup
   returns the successor we already have); after a network partition
   heals it is what re-merges the split rings, which stabilization
   gossip alone cannot do once the halves share no edges. */
C8 join@NI(NI,E) :- periodic@NI(NI,E,tRejoinAll), landmark@NI(NI,LI),
   LI != "-".

/* ---------------- stabilization ---------------- */
SB0 pred@NI(NI,"-","-").
SB1 stabilize@NI(NI,E) :- periodic@NI(NI,E,tStabilize).
SB2 stabilizeRequest@SI(SI,NI) :- stabilize@NI(NI,E),
    bestSucc@NI(NI,S,SI).
SB3 sendPredecessor@PI1(PI1,P,PI) :- stabilizeRequest@NI(NI,PI1),
    pred@NI(NI,P,PI), PI != "-".
SB4 succ@NI(NI,P,PI) :- node@NI(NI,N), sendPredecessor@NI(NI,P,PI),
    bestSucc@NI(NI,S,SI), P in (N,S).
SB5 sendSuccessors@SI(SI,NI) :- stabilize@NI(NI,E), succ@NI(NI,S,SI).
/* Only gossip successors recently heard from: without the freshness
   gate, dead entries circulate through successor lists forever, their
   TTLs refreshed by each reinsertion. */
SB6 returnSuccessor@PI(PI,S,SI) :- sendSuccessors@NI(NI,PI),
    succ@NI(NI,S,SI), lastHeard@NI(NI,SI,T), f_now() - T < tDead.
SB7A succ@NI(NI,S,SI) :- returnSuccessor@NI(NI,S,SI).
SB7B notifyPredecessor@SI(SI,N,NI) :- stabilize@NI(NI,E),
    node@NI(NI,N), bestSucc@NI(NI,S,SI).
SB8 pred@NI(NI,P,PI) :- node@NI(NI,N), notifyPredecessor@NI(NI,P,PI),
    pred@NI(NI,P1,PI1), ((PI1 == "-") || (P in (P1,N))).

/* ---------------- connectivity monitoring ---------------- */
CM0 pingEvent@NI(NI,E) :- periodic@NI(NI,E,tPing).
CM1 pingReq@SI(SI,NI,E) :- pingEvent@NI(NI,E), succ@NI(NI,S,SI),
    SI != NI.
CM2 pingReq@PI(PI,NI,E) :- pingEvent@NI(NI,E), pred@NI(NI,P,PI),
    PI != NI, PI != "-".
CM3 pingResp@RI(RI,NI,E) :- pingReq@NI(NI,RI,E).
CM4 succ@NI(NI,S,SI) :- succ@NI(NI,S,SI), pingResp@NI(NI,SI,E).
CM5 lastHeard@NI(NI,PI,T) :- pingResp@NI(NI,PI,E), T := f_now().
CM6 lastHeard@NI(NI,PI,T) :- pred@NI(NI,P,PI), PI != "-",
    T := f_now().
CM7 predFail@NI(NI,PI) :- pingEvent@NI(NI,E), pred@NI(NI,P,PI),
    lastHeard@NI(NI,PI,T), PI != "-", f_now() - T > tDead.
CM8 pred@NI(NI,"-","-") :- predFail@NI(NI,PI).
CM9 succFail@NI(NI,SI) :- pingEvent@NI(NI,E), succ@NI(NI,S,SI),
    lastHeard@NI(NI,SI,T), SI != NI, f_now() - T > tDead.
CM10 delete succ@NI(NI,S,SI) :- succFail@NI(NI,SI), succ@NI(NI,S,SI).
/* Baseline the freshness clock the first time a peer appears as a
   successor; reinsertions of an already-tracked peer keep the old
   baseline, so a gossiped-back zombie is re-deleted within one ping
   round instead of living another full timeout. */
CM11 lastHeard@NI(NI,SI,T) :- succ@NI(NI,S,SI),
     not lastHeard@NI(NI,SI,T2), T := f_now().
CM12 delete finger@NI(NI,I,B,BI) :- succFail@NI(NI,BI),
     finger@NI(NI,I,B,BI).
`

// NaradaSource is the Narada-style mesh: Appendix A's membership and
// liveness rules plus the §2.3 round-trip measurement rules P0-P3.
// The utility rules U1/U2 need a routing protocol running on the mesh
// and multi-node bodies; like the paper's own executable appendix, the
// runnable spec omits them (the linkstate overlay supplies routing).
const NaradaSource = `
materialize(member,   120,      infinity, keys(2)).
materialize(sequence, infinity, 1,        keys(2)).
materialize(neighbor, infinity, infinity, keys(2)).
materialize(env,      infinity, infinity, keys(2,3)).
materialize(latency,  120,      infinity, keys(2)).

define(tRefresh,   3).
define(tProbe,     1).
define(tPingMesh,  2).
define(tNeighborDead, 20).

/* Setup: bootstrap neighbors from env rows, start the sequence at 0,
   and know thyself as a member. Appendix A drives E0 from a one-shot
   periodic; triggering on env deltas instead makes bootstrap robust to
   configuration arriving after node start. */
E0 neighbor@X(X,Y) :- env@X(X, H, Y), H == "neighbor".
S0 sequence@X(X, Seq) :- periodic@X(X, E, 0, 1), Seq := 0.
I1 member@X(X, X, Seq, T, Live) :- periodic@X(X, E, 0, 1), Seq := 0,
   T := f_now(), Live := 1.

/* Membership refresh (Appendix A R1-R8, N1). */
R1 refreshEvent@X(X) :- periodic@X(X, E, tRefresh).
R2 refreshSequence@X(X, NewSeq) :- refreshEvent@X(X),
   sequence@X(X, Seq), NewSeq := Seq + 1.
R3 sequence@X(X, NewSeq) :- refreshSequence@X(X, NewSeq).
R4 refresh@Y(Y, X, NewSeq, Addr, ASeq, ALive) :-
   refreshSequence@X(X, NewSeq), member@X(X, Addr, ASeq, Time, ALive),
   neighbor@X(X, Y).
R5 membersFound@X(X, Y, YSeq, Addr, ASeq, ALive, count<*>) :-
   refresh@X(X, Y, YSeq, Addr, ASeq, ALive),
   member@X(X, Addr, MySeq, MyTime, MyLive), X != Addr.
R6 member@X(X, Addr, ASeq, T, ALive) :-
   membersFound@X(X, Y, YSeq, Addr, ASeq, ALive, C), C == 0,
   T := f_now().
R7 member@X(X, Addr, ASeq, T, ALive) :-
   membersFound@X(X, Y, YSeq, Addr, ASeq, ALive, C), C > 0,
   member@X(X, Addr, MySeq, MyT, MyLive), MySeq < ASeq, T := f_now().
R8 member@X(X, Y, YSeq, T, YLive) :- refresh@X(X, Y, YSeq, A, AS, AL),
   T := f_now(), YLive := 1.
N1 neighbor@X(X, Y) :- refresh@X(X, Y, YS, A, AS, L).

/* Neighbor liveness (Appendix A L1-L4). */
L1 neighborProbe@X(X) :- periodic@X(X, E, tProbe).
L2 deadNeighbor@X(X, Y) :- neighborProbe@X(X), T := f_now(),
   neighbor@X(X, Y), member@X(X, Y, YS, YT, L), T - YT > tNeighborDead.
L3 delete neighbor@X(X, Y) :- deadNeighbor@X(X, Y).
L4 member@X(X, Neighbor, DeadSeq, T, Live) :- deadNeighbor@X(X, Neighbor),
   member@X(X, Neighbor, S, T1, L), Live := 0, DeadSeq := S + 1,
   T := f_now().

/* Round-trip measurement (Section 2.3 P0-P3). */
P0 pingEvent@X(X, Y, E, max<R>) :- periodic@X(X, E, tPingMesh),
   member@X(X, Y, S, T, L), Y != X, R := f_rand().
P1 ping@Y(Y, X, E, T) :- pingEvent@X(X, Y, E, R), T := f_now().
P2 pong@X(X, Y, E, T) :- ping@Y(Y, X, E, T).
P3 latency@X(X, Y, LAT) :- pong@X(X, Y, E, T1), LAT := f_now() - T1.
`

// GossipSource is a push epidemic: every round each node picks one
// random peer and pushes every rumor it knows — one of the Section 7
// "epidemic-based networks".
const GossipSource = `
materialize(peer,  infinity, infinity, keys(2)).
materialize(rumor, infinity, infinity, keys(2)).

define(tGossip, 2).

G1 gossipEvent@X(X, E) :- periodic@X(X, E, tGossip).
G2 target@X(X, Y, E, max<R>) :- gossipEvent@X(X, E), peer@X(X, Y),
   R := f_rand().
G3 rumorMsg@Y(Y, X, ID, Data) :- target@X(X, Y, E, R),
   rumor@X(X, ID, Data).
G4 rumor@X(X, ID, Data) :- rumorMsg@X(X, Y, ID, Data).
`

// LinkStateSource is periodic distance-vector routing over a declared
// link table — the "link-state- and path-vector-based overlays" of
// Section 7, in the style of declarative routing (Loo et al.,
// HotNets-III).
const LinkStateSource = `
materialize(link,         infinity, infinity, keys(2)).
materialize(path,         15,       infinity, keys(2,3)).
materialize(bestPath,     15,       infinity, keys(2)).
materialize(bestPathDist, infinity, infinity, keys(2)).

define(tAdvertise, 2).

/* One-hop paths come straight from links. */
DV1 path@X(X, D, D, C) :- link@X(X, D, C).

/* Periodically advertise best paths to every neighbor. */
DV2 advEvent@X(X, E) :- periodic@X(X, E, tAdvertise).
DV3 advertisement@Y(Y, X, D, C) :- advEvent@X(X, E), link@X(X, Y, LC),
    bestPath@X(X, D, N, C).

/* Adopt advertised paths, adding the cost of the incoming link. */
DV4 path@X(X, D, Y, C2) :- advertisement@X(X, Y, D, C),
    link@X(X, Y, LC), C2 := C + LC, D != X.

/* Continuous best-path selection. bestPathDist is materialized so the
   periodic refresh rule DV8 can re-derive (and thereby TTL-refresh)
   stable best paths; the aggregate alone only emits on change, which
   would let an unchanged best path expire. */
DV5 bestPathDist@X(X, D, min<C>) :- path@X(X, D, N, C).
DV6 bestPath@X(X, D, N, C) :- bestPathDist@X(X, D, C),
    path@X(X, D, N, C).

/* Refresh soft state every advertisement round: one-hop paths and the
   currently-best paths. */
DV7 path@X(X, D, D, C) :- advEvent@X(X, E), link@X(X, D, C).
DV8 bestPath@X(X, D, N, C) :- advEvent@X(X, E), bestPathDist@X(X, D, C),
    path@X(X, D, N, C).
`

// MeshMulticastSource floods application messages across whatever mesh
// maintains a `neighbor` table — four rules of DVMRP-flavoured
// dissemination with duplicate suppression. It declares no neighbor
// table of its own: merge it with NaradaSource (overlog.Merge /
// p2.CompileMulti) and the two specifications share the mesh state,
// demonstrating the paper's multi-overlay sharing (§1, §2.1). This is
// the "second layer" of the Narada system the paper's intro describes.
const MeshMulticastSource = `
materialize(seenMsg, 120, 1000, keys(2)).

/* A message not seen before is new; remember and deliver it. */
M1 newMsg@X(X, MID, Data, From) :- message@X(X, MID, Data, From),
   not seenMsg@X(X, MID).
M2 seenMsg@X(X, MID) :- newMsg@X(X, MID, Data, From).
M3 deliver@X(X, MID, Data) :- newMsg@X(X, MID, Data, From).

/* Forward new messages to every mesh neighbor except the sender. */
M4 message@Y(Y, MID, Data, X) :- newMsg@X(X, MID, Data, From),
   neighbor@X(X, Y), Y != From.
`

// PingPongSource is the quickstart overlay: measure round-trip latency
// to a configured peer, the minimal two-node dataflow.
const PingPongSource = `
materialize(pingPeer, infinity, 1,        keys(1)).
materialize(rtt,      infinity, infinity, keys(2)).

define(tPing, 1).

Q1 pingEvent@X(X, E) :- periodic@X(X, E, tPing).
Q2 ping@Y(Y, X, E, T) :- pingEvent@X(X, E), pingPeer@X(X, Y),
   T := f_now().
Q3 pong@X(X, Y, E, T) :- ping@Y(Y, X, E, T).
Q4 rtt@X(X, Y, LAT) :- pong@X(X, Y, E, T1), LAT := f_now() - T1.
`

// Spec pairs a name with OverLog source, for enumeration by tools.
type Spec struct {
	Name   string
	Source string
}

// All returns every shipped overlay specification. The "multicast"
// entry is the Narada mesh merged with the mesh-multicast layer — two
// specifications sharing one dataflow and one neighbor table.
func All() []Spec {
	return []Spec{
		{"chord", ChordSource},
		{"narada", NaradaSource},
		{"gossip", GossipSource},
		{"linkstate", LinkStateSource},
		{"pingpong", PingPongSource},
		{"multicast", NaradaSource + MeshMulticastSource},
	}
}

// Lookup returns the named spec source, or "".
func Lookup(name string) string {
	for _, s := range All() {
		if s.Name == name {
			return s.Source
		}
	}
	return ""
}

// ChordPlan compiles the Chord spec with optional define overrides.
func ChordPlan(overrides map[string]val.Value) *planner.Plan {
	return planner.MustCompile(overlog.MustParse(ChordSource), overrides)
}

// NaradaPlan compiles the Narada spec with optional define overrides.
func NaradaPlan(overrides map[string]val.Value) *planner.Plan {
	return planner.MustCompile(overlog.MustParse(NaradaSource), overrides)
}

// GossipPlan compiles the gossip spec.
func GossipPlan(overrides map[string]val.Value) *planner.Plan {
	return planner.MustCompile(overlog.MustParse(GossipSource), overrides)
}

// LinkStatePlan compiles the distance-vector routing spec.
func LinkStatePlan(overrides map[string]val.Value) *planner.Plan {
	return planner.MustCompile(overlog.MustParse(LinkStateSource), overrides)
}

// PingPongPlan compiles the quickstart spec.
func PingPongPlan(overrides map[string]val.Value) *planner.Plan {
	return planner.MustCompile(overlog.MustParse(PingPongSource), overrides)
}

// ChordKVPlan merges the Chord spec with the replicated key-value
// service (internal/kvs) into one compiled dataflow — the ring does
// the routing, the KV rules do replication, quorum, and repair.
func ChordKVPlan(overrides map[string]val.Value) *planner.Plan {
	merged, err := overlog.Merge(
		overlog.MustParse(ChordSource),
		overlog.MustParse(kvs.Source),
	)
	if err != nil {
		panic(err)
	}
	return planner.MustCompile(merged, overrides)
}

// NaradaMulticastPlan merges the Narada mesh with the multicast layer
// into a single compiled dataflow sharing the neighbor table.
func NaradaMulticastPlan(overrides map[string]val.Value) *planner.Plan {
	merged, err := overlog.Merge(
		overlog.MustParse(NaradaSource),
		overlog.MustParse(MeshMulticastSource),
	)
	if err != nil {
		panic(err)
	}
	return planner.MustCompile(merged, overrides)
}
