package overlays

import (
	"testing"

	"p2/internal/overlog"
	"p2/internal/planner"
)

func TestAllSpecsParseAndCompile(t *testing.T) {
	for _, s := range All() {
		prog, err := overlog.Parse(s.Source)
		if err != nil {
			t.Fatalf("%s: parse: %v", s.Name, err)
		}
		plan, err := planner.Compile(prog, nil)
		if err != nil {
			t.Fatalf("%s: compile: %v", s.Name, err)
		}
		if plan.RuleCount() == 0 {
			t.Fatalf("%s: no rules", s.Name)
		}
	}
}

func TestChordSpecComplexity(t *testing.T) {
	// The paper's headline: "the Chord structured overlay in only 47
	// rules". Our full spec, counting rules and the two base facts the
	// appendix also lists, must stay in that neighborhood — and far
	// from the "thousands of lines" of hand-coded implementations.
	prog := overlog.MustParse(ChordSource)
	rules := prog.RuleCount() + len(prog.Facts)
	// 56 = the appendix's rule set plus the fault-tolerance rules this
	// reproduction needed (C6/C7 re-join, CM9-CM12 successor failure
	// detection, F10/F11 fix-cycle unsticking) — each documented in the
	// spec. Still a ~47-rule-scale artifact, two orders of magnitude
	// below hand-coded implementations.
	if rules < 40 || rules > 60 {
		t.Fatalf("Chord spec = %d rules(+facts), want ~47-56", rules)
	}
	t.Logf("Chord: %d rules + %d facts, %d tables",
		prog.RuleCount(), len(prog.Facts), len(prog.Materialize))
}

func TestNaradaSpecComplexity(t *testing.T) {
	// §2.3: a Narada-style mesh in 16 rules; our spec adds the ping
	// rules P0-P3 and three bootstrap rules.
	prog := overlog.MustParse(NaradaSource)
	if prog.RuleCount() < 16 || prog.RuleCount() > 25 {
		t.Fatalf("Narada spec = %d rules", prog.RuleCount())
	}
}

func TestChordPlanShape(t *testing.T) {
	plan := ChordPlan(nil)
	// The lookup rules L1/L2 both trigger on the lookup stream.
	lookupRules := 0
	for _, r := range plan.Rules {
		if r.Trigger.Name == "lookup" {
			lookupRules++
		}
	}
	if lookupRules != 2 {
		t.Fatalf("rules triggered by lookup = %d, want 2 (L1, L2)", lookupRules)
	}
	// bestSuccDist is a continuous table aggregate.
	if len(plan.TableAggs) < 2 { // N4 bestSuccDist, S1 succCount
		t.Fatalf("table aggregates = %d, want >= 2", len(plan.TableAggs))
	}
	for _, name := range []string{"node", "succ", "finger", "bestSucc", "pred", "landmark"} {
		if !plan.IsTable(name) {
			t.Fatalf("table %s missing", name)
		}
	}
}

func TestLookupReturnsSpecSource(t *testing.T) {
	if Lookup("chord") == "" || Lookup("narada") == "" {
		t.Fatal("lookup failed")
	}
	if Lookup("nope") != "" {
		t.Fatal("unknown spec should be empty")
	}
}

func TestPlanHelpersCompile(t *testing.T) {
	if ChordPlan(nil) == nil || NaradaPlan(nil) == nil || GossipPlan(nil) == nil ||
		LinkStatePlan(nil) == nil || PingPongPlan(nil) == nil {
		t.Fatal("plan helpers failed")
	}
}

// compileSrc is a test helper: parse + compile one source.
func compileSrc(src string) (*planner.Plan, error) {
	prog, err := overlog.Parse(src)
	if err != nil {
		return nil, err
	}
	return planner.Compile(prog, nil)
}

func TestNaradaMulticastPlanCompiles(t *testing.T) {
	plan := NaradaMulticastPlan(nil)
	if !plan.IsTable("neighbor") || !plan.IsTable("seenMsg") {
		t.Fatal("merged plan missing shared tables")
	}
}
