package eventloop

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestSimOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	s.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 10 {
		t.Errorf("clock = %v, want 10", s.Now())
	}
}

func TestSimTieBreakFIFO(t *testing.T) {
	s := NewSim()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(1, func() { order = append(order, i) })
	}
	s.Run(2)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of order: %v", order)
		}
	}
}

func TestSimAfterAndNow(t *testing.T) {
	s := NewSim()
	var at float64
	s.After(5, func() {
		at = s.Now()
		s.After(2.5, func() { at = s.Now() })
	})
	s.Run(100)
	if at != 7.5 {
		t.Errorf("nested After fired at %v, want 7.5", at)
	}
}

func TestSimDeferRunsAfterCurrentHandler(t *testing.T) {
	s := NewSim()
	var order []string
	s.At(1, func() {
		s.Defer(func() { order = append(order, "deferred") })
		order = append(order, "handler")
	})
	s.Run(1)
	if len(order) != 2 || order[0] != "handler" || order[1] != "deferred" {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 1 {
		t.Errorf("defer must not advance time: now = %v", s.Now())
	}
}

func TestSimCancel(t *testing.T) {
	s := NewSim()
	fired := false
	tm := s.At(1, func() { fired = true })
	tm.Cancel()
	s.Run(5)
	if fired {
		t.Error("canceled timer fired")
	}
	var nilTimer *Timer
	nilTimer.Cancel() // must not panic
}

func TestSimPastEventClamps(t *testing.T) {
	s := NewSim()
	s.Run(10)
	fired := -1.0
	s.At(3, func() { fired = s.Now() }) // in the past
	s.Run(20)
	if fired != 10 {
		t.Errorf("past event fired at %v, want clamped to 10", fired)
	}
}

func TestSimStep(t *testing.T) {
	s := NewSim()
	n := 0
	s.At(1, func() { n++ })
	s.At(2, func() { n++ })
	if !s.Step() || s.Now() != 1 || n != 1 {
		t.Fatal("first step")
	}
	if !s.Step() || s.Now() != 2 || n != 2 {
		t.Fatal("second step")
	}
	if s.Step() {
		t.Fatal("empty loop should not step")
	}
}

func TestSimRunReturnsCount(t *testing.T) {
	s := NewSim()
	for i := 0; i < 7; i++ {
		s.At(float64(i), func() {})
	}
	if got := s.Run(100); got != 7 {
		t.Errorf("Run fired %d, want 7", got)
	}
	if s.Pending() != 0 {
		t.Errorf("pending = %d", s.Pending())
	}
}

func TestSimRunUntilBoundary(t *testing.T) {
	s := NewSim()
	fired := []float64{}
	s.At(5, func() { fired = append(fired, 5) })
	s.At(10, func() { fired = append(fired, 10) })
	s.At(10.001, func() { fired = append(fired, 10.001) })
	s.Run(10) // inclusive boundary
	if len(fired) != 2 {
		t.Fatalf("fired = %v", fired)
	}
	s.Run(11)
	if len(fired) != 3 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestSimTimersDuringHandlers(t *testing.T) {
	// A periodic self-rescheduling handler — the pattern the Periodic
	// dataflow element uses.
	s := NewSim()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			s.After(3, tick)
		}
	}
	s.After(3, tick)
	s.Run(14.999)
	if count != 4 {
		t.Errorf("count = %d at t=14.999, want 4", count)
	}
	s.Run(15)
	if count != 5 {
		t.Errorf("count = %d at t=15, want 5", count)
	}
}

func TestRealLoopBasics(t *testing.T) {
	r := NewReal()
	done := make(chan struct{})
	var order []int
	r.After(0.01, func() { order = append(order, 2); r.Stop() })
	r.Post(func() { order = append(order, 1) })
	go func() { r.Run(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("real loop did not finish")
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestRealLoopTimerOrdering(t *testing.T) {
	r := NewReal()
	var n atomic.Int32
	for i := 0; i < 10; i++ {
		r.After(0.001*float64(i), func() { n.Add(1) })
	}
	r.After(0.05, r.Stop)
	finished := make(chan struct{})
	go func() { r.Run(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
	if n.Load() != 10 {
		t.Errorf("fired %d timers, want 10", n.Load())
	}
}

func TestRealLoopCancel(t *testing.T) {
	r := NewReal()
	fired := atomic.Bool{}
	tm := r.After(0.02, func() { fired.Store(true) })
	tm.Cancel()
	r.After(0.05, r.Stop)
	done := make(chan struct{})
	go func() { r.Run(); close(done) }()
	<-done
	if fired.Load() {
		t.Error("canceled real timer fired")
	}
}

func TestRealPostFromOtherGoroutine(t *testing.T) {
	r := NewReal()
	got := make(chan int, 1)
	go func() {
		r.Post(func() { got <- 42; r.Stop() })
	}()
	done := make(chan struct{})
	go func() { r.Run(); close(done) }()
	select {
	case v := <-got:
		if v != 42 {
			t.Errorf("got %d", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("posted fn never ran")
	}
	<-done
}

func BenchmarkSimScheduleAndFire(b *testing.B) {
	s := NewSim()
	for i := 0; i < b.N; i++ {
		s.After(1, func() {})
		s.Step()
	}
}
