package eventloop

import (
	"testing"
)

// The deferred-procedure-call lane is hit on every strand trigger; the
// pinned budget is zero allocations beyond the queued ring entry
// (amortized ring growth). Timer scheduling through the pooled
// fire-and-forget path must likewise reach steady-state zero.

// TestSimDeferZeroAlloc pins Defer + drain at zero allocations once the
// ring has grown to the workload's high-water mark.
func TestSimDeferZeroAlloc(t *testing.T) {
	s := NewSim()
	fn := func() {}
	// Pre-grow the ring.
	for i := 0; i < 64; i++ {
		s.Defer(fn)
	}
	s.RunFor(0)
	allocs := testing.AllocsPerRun(200, func() {
		s.Defer(fn)
		s.Defer(fn)
		if s.RunFor(0) != 2 {
			t.Fatal("deferred fns did not run")
		}
	})
	if allocs != 0 {
		t.Fatalf("Defer allocated %.1f/op, want 0", allocs)
	}
}

// TestSimAfterFreeSteadyStateZeroAlloc pins the pooled timer path: a
// periodic-style schedule/fire cycle must reuse Timer structs.
func TestSimAfterFreeSteadyStateZeroAlloc(t *testing.T) {
	s := NewSim()
	fn := func() {}
	// Warm the pool.
	for i := 0; i < 8; i++ {
		s.AfterFree(0.1, fn)
	}
	s.RunFor(1)
	allocs := testing.AllocsPerRun(200, func() {
		s.AfterFree(0.1, fn)
		s.RunFor(1)
	})
	if allocs != 0 {
		t.Fatalf("AfterFree steady state allocated %.1f/op, want 0", allocs)
	}
}

// TestSimPendingConstantTime covers the live-timer gauge: canceled
// timers must leave the count the moment Cancel runs, without waiting
// to be popped, and DPC entries count until drained.
func TestSimPendingConstantTime(t *testing.T) {
	s := NewSim()
	var tms []*Timer
	for i := 0; i < 100; i++ {
		tms = append(tms, s.After(float64(i)+1, func() {}))
	}
	if got := s.Pending(); got != 100 {
		t.Fatalf("pending = %d, want 100", got)
	}
	for _, tm := range tms[:60] {
		tm.Cancel()
	}
	if got := s.Pending(); got != 40 {
		t.Fatalf("pending after cancel = %d, want 40", got)
	}
	s.Defer(func() {})
	if got := s.Pending(); got != 41 {
		t.Fatalf("pending with DPC = %d, want 41", got)
	}
	s.RunFor(200)
	if got := s.Pending(); got != 0 {
		t.Fatalf("pending after drain = %d, want 0", got)
	}
}

// TestSimDeferOrderedAgainstAtNow verifies deterministic interleaving
// across the two lanes: Defer and At(now) fire in scheduling order.
func TestSimDeferOrderedAgainstAtNow(t *testing.T) {
	s := NewSim()
	var got []int
	s.At(0, func() {
		s.Defer(func() { got = append(got, 1) })
		s.At(s.Now(), func() { got = append(got, 2) })
		s.Defer(func() { got = append(got, 3) })
	})
	s.RunFor(0)
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

// TestSimCancelFreeRecycles covers the release contract: a canceled-
// and-freed timer's struct returns to the pool once popped, and the
// cancellation still holds.
func TestSimCancelFreeRecycles(t *testing.T) {
	s := NewSim()
	fired := false
	tm := s.After(1, func() { fired = true })
	tm.CancelFree()
	s.RunFor(2)
	if fired {
		t.Fatal("canceled timer fired")
	}
	if len(s.pool) == 0 {
		t.Fatal("freed timer was not recycled")
	}
}

func BenchmarkSimDefer(b *testing.B) {
	s := NewSim()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Defer(fn)
		s.RunFor(0)
	}
}

func BenchmarkSimTimerChurn(b *testing.B) {
	s := NewSim()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AfterFree(0.001, fn)
		s.RunFor(0.002)
	}
}

func BenchmarkSimCancelHeavy(b *testing.B) {
	// The retransmit pattern: arm, cancel, re-arm. Pending must stay
	// O(1) regardless of how many canceled timers linger in the heap.
	s := NewSim()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := s.After(1000, func() {})
		tm.CancelFree()
		if s.Pending() != 0 {
			b.Fatal("canceled timer still pending")
		}
		if i%1024 == 0 {
			s.RunFor(0) // let the heap drain tombstones occasionally
		}
	}
}
