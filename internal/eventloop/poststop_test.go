package eventloop

import (
	"errors"
	"testing"
	"time"
)

// TestPostAfterStopErrors is the regression test for the Install/Close
// TOCTOU: posting onto a stopped Real must return ErrStopped instead of
// silently enqueueing a callback that will never run (and leaving a
// caller blocked forever on its result).
func TestPostAfterStopErrors(t *testing.T) {
	r := NewReal()
	go r.Run()
	if err := r.Post(func() {}); err != nil {
		t.Fatalf("Post on a live loop: %v", err)
	}
	r.Stop()
	if err := r.Post(func() { t.Error("callback ran on a stopped loop") }); !errors.Is(err, ErrStopped) {
		t.Fatalf("Post after Stop = %v, want ErrStopped", err)
	}
	select {
	case <-r.Stopped():
	default:
		t.Fatal("Stopped channel not closed after Stop")
	}
}

// TestPostStopWindowUnblocksWaiter covers the race the channel exists
// for: a Post accepted just before Stop may never run, so a caller
// waiting on its completion must be released by Stopped rather than
// block forever.
func TestPostStopWindowUnblocksWaiter(t *testing.T) {
	r := NewReal()
	// Deliberately never call Run: the posted callback can never
	// execute, exactly like a Post that lost the race with Stop.
	done := make(chan struct{})
	if err := r.Post(func() { close(done) }); err != nil {
		t.Fatal(err)
	}
	go r.Stop()
	select {
	case <-done:
		t.Fatal("callback ran without a loop")
	case <-r.Stopped():
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never released")
	}
}

// TestStopIdempotent double-stops safely.
func TestStopIdempotent(t *testing.T) {
	r := NewReal()
	r.Stop()
	r.Stop()
	if err := r.Post(func() {}); !errors.Is(err, ErrStopped) {
		t.Fatalf("Post after double Stop = %v", err)
	}
}
