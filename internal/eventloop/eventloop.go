// Package eventloop provides P2's execution model: a single-threaded,
// run-to-completion event loop in the style of libasync (§3.1: "Each
// event handler runs to completion before the next one is called").
//
// Two implementations share the Loop interface:
//
//   - Sim: a discrete-event loop over virtual time, shared by every node
//     in a simulation. Twenty minutes of protocol time execute in
//     milliseconds and runs are bit-for-bit reproducible.
//   - Real: a wall-clock loop backed by time.Timer, used when deploying
//     P2 nodes over real UDP sockets.
//
// Scheduling has two lanes. Timed work goes through a binary heap of
// Timer structs. Deferred procedure calls (§3.3) — same-instant FIFO
// work by definition — go through a dedicated ring buffer that bypasses
// the heap entirely: a Defer is one ring slot, no Timer, no heap push,
// no allocation. Ordering against At(now) timers stays deterministic
// because both lanes share one scheduling sequence counter.
//
// Time is modeled as float64 seconds, matching the val.Time kind that
// OverLog's f_now() returns.
package eventloop

import (
	"container/heap"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// ErrStopped is returned by Real.Post once the loop has been stopped:
// the callback will never run, so callers waiting on it must not block.
var ErrStopped = errors.New("eventloop: loop stopped")

// Clock supplies the current time in seconds.
type Clock interface {
	Now() float64
}

// Loop schedules callbacks. All callbacks run sequentially — handlers
// never observe concurrent execution, which is what lets table and
// dataflow code run lock-free.
type Loop interface {
	Clock
	// At schedules fn at absolute time t (clamped to now if in the past).
	At(t float64, fn func()) *Timer
	// After schedules fn d seconds from now.
	After(d float64, fn func()) *Timer
	// Defer schedules fn to run as soon as the current handler
	// completes — the "deferred procedure call" from §3.3.
	Defer(fn func())
}

// FreeScheduler is implemented by loops that can schedule
// fire-and-forget callbacks on pooled Timer structs. No handle is
// returned, so the timer cannot be canceled — which is exactly what
// makes recycling it safe.
type FreeScheduler interface {
	AfterFree(d float64, fn func())
}

// ScheduleFree schedules fn d seconds out without a cancel handle,
// using the loop's pooled path when available. Periodic re-arms
// (OverLog periodics, transfer loops) route through here so steady
// ticking does not churn Timer allocations.
func ScheduleFree(l Loop, d float64, fn func()) {
	if fs, ok := l.(FreeScheduler); ok {
		fs.AfterFree(d, fn)
		return
	}
	l.After(d, fn)
}

// Timer lifecycle bits. A timer is scheduled with state 0 (or stFree
// when fire-and-forget); Cancel sets stCanceled, removal from the heap
// sets stPopped. Exactly one of those two transitions decrements the
// loop's live-timer gauge, which is what makes Pending O(1) instead of
// an O(heap) scan.
const (
	stCanceled uint32 = 1 << iota // will not fire
	stPopped                      // left the heap (fired or discarded)
	stFree                        // no handle retained; pool on pop
)

// Timer is a handle to a scheduled callback.
type Timer struct {
	at    float64
	seq   uint64
	fn    func()
	state atomic.Uint32
	live  *atomic.Int64 // owning loop's live-timer gauge
	index int           // heap position, -1 when popped
}

// Cancel prevents the callback from firing. Safe to call after firing,
// and (because the state word is atomic) from any goroutine.
func (t *Timer) Cancel() {
	if t == nil {
		return
	}
	for {
		s := t.state.Load()
		if s&stCanceled != 0 {
			return
		}
		if t.state.CompareAndSwap(s, s|stCanceled) {
			if s&stPopped == 0 && t.live != nil {
				t.live.Add(-1)
			}
			return
		}
	}
}

// CancelFree cancels the timer and releases the handle: the caller
// promises to drop every reference and never touch the timer again, so
// the loop may recycle the struct once it leaves the heap. Hot
// re-arm/disarm cycles (retransmission timers, delayed acks) use this
// instead of Cancel to avoid churning a Timer allocation per cycle.
func (t *Timer) CancelFree() {
	if t == nil {
		return
	}
	t.Cancel()
	for {
		s := t.state.Load()
		if s&stFree != 0 || t.state.CompareAndSwap(s, s|stFree) {
			return
		}
	}
}

// take marks the timer as removed from the heap, decrementing the live
// gauge. It reports false if the timer was canceled first.
func (t *Timer) take() bool {
	for {
		s := t.state.Load()
		if s&stCanceled != 0 {
			return false
		}
		if t.state.CompareAndSwap(s, s|stPopped) {
			if t.live != nil {
				t.live.Add(-1)
			}
			return true
		}
	}
}

// canceled reports whether Cancel has been called.
func (t *Timer) canceled() bool { return t.state.Load()&stCanceled != 0 }

// When returns the scheduled absolute time.
func (t *Timer) When() float64 { return t.at }

// timerHeap orders timers by (time, insertion sequence) so simultaneous
// events fire deterministically in scheduling order.
type timerHeap []*Timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// dpc is one deferred procedure call: the callback plus its position in
// the loop's global scheduling order (shared with the timer heap, so
// Defer interleaves deterministically with At(now)).
type dpc struct {
	fn  func()
	seq uint64
}

// dpcRing is a growable FIFO ring of deferred procedure calls — the
// same-instant lane that bypasses the timer heap. Push and pop are O(1)
// and allocation-free once the ring has grown to the workload's
// high-water mark.
type dpcRing struct {
	buf  []dpc
	head int
	n    int
}

func (q *dpcRing) push(fn func(), seq uint64) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = dpc{fn: fn, seq: seq}
	q.n++
}

func (q *dpcRing) grow() {
	size := 2 * len(q.buf)
	if size == 0 {
		size = 8 // power of two; indexing masks instead of dividing
	}
	nb := make([]dpc, size)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf, q.head = nb, 0
}

func (q *dpcRing) pop() func() {
	d := q.buf[q.head]
	q.buf[q.head] = dpc{}
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return d.fn
}

// peekSeq returns the scheduling sequence of the oldest entry; call
// only when n > 0.
func (q *dpcRing) peekSeq() uint64 { return q.buf[q.head].seq }

// maxTimerPool bounds the free list of recycled Timer structs.
const maxTimerPool = 256

// Sim is a virtual-time discrete-event loop. Not safe for concurrent
// use: at any moment exactly one goroutine may touch a Sim. In a
// single-loop simulation that is the simulation goroutine; under a
// ShardedSim each shard's Sim is owned by its worker during an epoch
// and by the coordinator at barriers, with the epoch channel handshake
// serializing the handoff (the shard-ownership rule — see the package
// documentation in sharded.go). Everything pinned to a shard (nodes,
// tables, transports) inherits the same rule.
type Sim struct {
	now   float64
	seq   uint64
	heap  timerHeap
	dq    dpcRing
	livec atomic.Int64 // scheduled, uncanceled timers (not DPCs)
	pool  []*Timer     // recycled fire-and-forget timers
}

// NewSim returns a simulation loop starting at time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// At schedules fn at virtual time t.
func (s *Sim) At(t float64, fn func()) *Timer {
	return s.schedule(t, fn, 0)
}

// After schedules fn d seconds from the current virtual time.
func (s *Sim) After(d float64, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.schedule(s.now+d, fn, 0)
}

// AfterFree schedules fn d seconds out on a pooled timer. No handle is
// returned — the caller cannot cancel, and the Timer struct is recycled
// when it leaves the heap.
func (s *Sim) AfterFree(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	s.schedule(s.now+d, fn, stFree)
}

func (s *Sim) schedule(at float64, fn func(), flags uint32) *Timer {
	if at < s.now {
		at = s.now
	}
	s.seq++
	tm := s.get()
	tm.at, tm.seq, tm.fn = at, s.seq, fn
	tm.live = &s.livec
	tm.state.Store(flags)
	s.livec.Add(1)
	heap.Push(&s.heap, tm)
	return tm
}

func (s *Sim) get() *Timer {
	if n := len(s.pool); n > 0 {
		tm := s.pool[n-1]
		s.pool[n-1] = nil
		s.pool = s.pool[:n-1]
		return tm
	}
	return &Timer{}
}

// recycle returns tm to the pool if its owner released the handle.
func (s *Sim) recycle(tm *Timer) {
	if tm.state.Load()&stFree != 0 && len(s.pool) < maxTimerPool {
		tm.fn = nil
		s.pool = append(s.pool, tm)
	}
}

// Defer schedules fn at the current virtual time, after already-queued
// same-instant events. It is one ring slot: no Timer, no heap push, no
// allocation beyond the queued entry.
func (s *Sim) Defer(fn func()) {
	s.seq++
	s.dq.push(fn, s.seq)
}

// next pops the earliest runnable event due at or before limit,
// advancing virtual time. The DPC ring holds same-instant work, so a
// heap timer runs first only when it is due at the current instant and
// was scheduled earlier than the ring's oldest entry.
func (s *Sim) next(limit float64) (func(), bool) {
	for {
		var top *Timer
		for s.heap.Len() > 0 {
			tm := s.heap[0]
			if tm.canceled() {
				heap.Pop(&s.heap)
				s.recycle(tm)
				continue
			}
			top = tm
			break
		}
		if s.dq.n > 0 {
			if top == nil || top.at > s.now || top.seq > s.dq.peekSeq() {
				return s.dq.pop(), true
			}
		}
		if top == nil || top.at > limit {
			return nil, false
		}
		heap.Pop(&s.heap)
		if !top.take() {
			s.recycle(top)
			continue
		}
		s.now = top.at
		fn := top.fn
		s.recycle(top)
		return fn, true
	}
}

// Step fires the next pending event, advancing virtual time. It reports
// whether an event ran.
func (s *Sim) Step() bool {
	fn, ok := s.next(math.Inf(1))
	if !ok {
		return false
	}
	fn()
	return true
}

// Run fires events until the queue is empty or virtual time would pass
// until. It returns the number of events fired. On return the clock
// reads min(until, time of last event) — or exactly until if the queue
// drained earlier.
func (s *Sim) Run(until float64) int {
	n := 0
	for {
		fn, ok := s.next(until)
		if !ok {
			break
		}
		fn()
		n++
	}
	if s.now < until {
		s.now = until
	}
	return n
}

// RunFor advances the loop by d seconds of virtual time.
func (s *Sim) RunFor(d float64) int { return s.Run(s.now + d) }

// Pending returns the number of scheduled events still due to fire:
// live (uncanceled) timers plus queued deferred procedure calls. The
// gauge is maintained incrementally on schedule/cancel/pop, so the
// sysNode introspection refresh reads it in O(1) instead of scanning a
// heap full of lingering canceled retry timers.
func (s *Sim) Pending() int { return int(s.livec.Load()) + s.dq.n }

// Real is a wall-clock loop. Callbacks still run one at a time on the
// loop goroutine; Post and Defer are safe to call from other goroutines
// (e.g. a UDP reader posting inbound datagrams).
type Real struct {
	mu     sync.Mutex
	cond   *sync.Cond
	heap   timerHeap
	seq    uint64
	posted []func()
	dq     dpcRing
	livec  atomic.Int64
	stop   bool
	stopc  chan struct{}
	start  time.Time
}

// NewReal returns a wall-clock loop; time zero is the moment of creation.
func NewReal() *Real {
	r := &Real{start: time.Now(), stopc: make(chan struct{})}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Now returns seconds since the loop was created.
func (r *Real) Now() float64 { return time.Since(r.start).Seconds() }

// At schedules fn at absolute loop time t.
func (r *Real) At(t float64, fn func()) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	tm := &Timer{at: t, seq: r.seq, fn: fn, live: &r.livec}
	r.livec.Add(1)
	heap.Push(&r.heap, tm)
	r.cond.Signal()
	return tm
}

// After schedules fn d seconds from now.
func (r *Real) After(d float64, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return r.At(r.Now()+d, fn)
}

// AfterFree schedules fn without returning a handle. The wall-clock
// loop does not pool timers — allocation churn is noise next to real
// network I/O — but implementing FreeScheduler keeps scheduling code
// identical across Sim and Real.
func (r *Real) AfterFree(d float64, fn func()) { r.After(d, fn) }

// Defer schedules fn on the deferred-procedure-call ring: it runs as
// soon as the in-progress handler completes, before posted work and due
// timers collected for later in the same batch.
func (r *Real) Defer(fn func()) {
	r.mu.Lock()
	r.dq.push(fn, 0)
	r.mu.Unlock()
	r.cond.Signal()
}

// Post enqueues fn from any goroutine; it runs on the loop goroutine.
// Once the loop has been stopped Post returns ErrStopped and the
// callback is guaranteed never to run — callers that wait for the
// callback's result must check the error (and select on Stopped for the
// window where a Post was accepted but Stop preempted the loop) or they
// would block forever on a dead loop.
func (r *Real) Post(fn func()) error {
	r.mu.Lock()
	if r.stop {
		r.mu.Unlock()
		return ErrStopped
	}
	r.posted = append(r.posted, fn)
	r.mu.Unlock()
	r.cond.Signal()
	return nil
}

// Stopped returns a channel closed when the loop has been stopped.
// Posted callbacks accepted before Stop may or may not run; once
// Stopped is closed, a caller waiting on one must stop waiting.
func (r *Real) Stopped() <-chan struct{} { return r.stopc }

// Pending returns the number of live scheduled timers plus queued
// deferred and posted functions not yet run — the Real counterpart of
// Sim.Pending, used by the sysNode introspection relation as a
// queue-length gauge. Canceled timers (e.g. transport retransmit timers
// voided by an ack) never count: the gauge is decremented the moment
// Cancel runs.
func (r *Real) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.livec.Load()) + len(r.posted) + r.dq.n
}

// Stop makes Run return after the current handler and closes the
// Stopped channel. Idempotent; safe from any goroutine.
func (r *Real) Stop() {
	r.mu.Lock()
	if !r.stop {
		r.stop = true
		close(r.stopc)
	}
	r.mu.Unlock()
	r.cond.Signal()
}

// runDPCs drains one generation of the deferred-procedure-call ring —
// the entries present at call time — running each outside the lock.
// Entries deferred by the drained callbacks themselves wait for the
// next call (runDPCs runs after every handler, so they are still
// prompt), which keeps a same-instant defer cascade from starving the
// batch loop where Stop is honored and due timers are collected.
func (r *Real) runDPCs() {
	r.mu.Lock()
	gen := r.dq.n
	r.mu.Unlock()
	for i := 0; i < gen; i++ {
		r.mu.Lock()
		if r.stop || r.dq.n == 0 {
			r.mu.Unlock()
			return
		}
		fn := r.dq.pop()
		r.mu.Unlock()
		fn()
	}
}

// Run processes deferred calls, posted functions, and timers until Stop
// is called. It must be called from exactly one goroutine.
func (r *Real) Run() {
	var fns []func()
	var due []*Timer
	for {
		r.mu.Lock()
		for {
			if r.stop {
				r.mu.Unlock()
				return
			}
			if r.dq.n > 0 || len(r.posted) > 0 {
				break
			}
			if r.heap.Len() > 0 {
				next := r.heap[0]
				if next.canceled() {
					heap.Pop(&r.heap)
					continue
				}
				wait := next.at - r.Now()
				if wait <= 0 {
					break
				}
				// Wake up when the timer is due or when signaled.
				t := time.AfterFunc(time.Duration(wait*float64(time.Second)), r.cond.Signal)
				r.cond.Wait()
				t.Stop()
				continue
			}
			r.cond.Wait()
		}
		// Collect runnable work under the lock, run it outside. The
		// reusable fns/due buffers are cleared after execution so stale
		// callbacks do not linger.
		fns = append(fns[:0], r.posted...)
		for i := range r.posted {
			r.posted[i] = nil
		}
		r.posted = r.posted[:0]
		now := r.Now()
		due = due[:0]
		for r.heap.Len() > 0 {
			next := r.heap[0]
			if next.canceled() {
				heap.Pop(&r.heap)
				continue
			}
			if next.at > now {
				break
			}
			heap.Pop(&r.heap)
			next.take()
			due = append(due, next)
		}
		r.mu.Unlock()
		// Deferred procedure calls run first and re-drain after every
		// callback, so each handler's deferred work runs the moment the
		// handler completes. Stop is honored between callbacks — "Run
		// returns after the current handler" — so a batch entry that
		// stops the loop prevents the rest of its batch from running;
		// combined with Post's ErrStopped this is what lets a waiter
		// released by Stopped know its callback will never run.
		r.runDPCs()
		for i, fn := range fns {
			if r.stopping() {
				break
			}
			fn()
			fns[i] = nil
			r.runDPCs()
		}
		for i, tm := range due {
			if r.stopping() {
				break
			}
			// Re-check at invocation time: an earlier callback in this
			// very batch may have canceled a timer collected with it.
			if !tm.canceled() {
				tm.fn()
			}
			due[i] = nil
			r.runDPCs()
		}
		for i := range fns {
			fns[i] = nil
		}
		for i := range due {
			due[i] = nil
		}
	}
}

// stopping reports whether Stop has been called.
func (r *Real) stopping() bool {
	select {
	case <-r.stopc:
		return true
	default:
		return false
	}
}
