// Package eventloop provides P2's execution model: a single-threaded,
// run-to-completion event loop in the style of libasync (§3.1: "Each
// event handler runs to completion before the next one is called").
//
// Two implementations share the Loop interface:
//
//   - Sim: a discrete-event loop over virtual time, shared by every node
//     in a simulation. Twenty minutes of protocol time execute in
//     milliseconds and runs are bit-for-bit reproducible.
//   - Real: a wall-clock loop backed by time.Timer, used when deploying
//     P2 nodes over real UDP sockets.
//
// Time is modeled as float64 seconds, matching the val.Time kind that
// OverLog's f_now() returns.
package eventloop

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"time"
)

// Clock supplies the current time in seconds.
type Clock interface {
	Now() float64
}

// Loop schedules callbacks. All callbacks run sequentially — handlers
// never observe concurrent execution, which is what lets table and
// dataflow code run lock-free.
type Loop interface {
	Clock
	// At schedules fn at absolute time t (clamped to now if in the past).
	At(t float64, fn func()) *Timer
	// After schedules fn d seconds from now.
	After(d float64, fn func()) *Timer
	// Defer schedules fn to run as soon as the current handler
	// completes — the "deferred procedure call" from §3.3.
	Defer(fn func())
}

// Timer is a handle to a scheduled callback.
type Timer struct {
	at       float64
	seq      uint64
	fn       func()
	canceled atomic.Bool
	index    int // heap position, -1 when popped
}

// Cancel prevents the callback from firing. Safe to call after firing,
// and (because the flag is atomic) from any goroutine.
func (t *Timer) Cancel() {
	if t != nil {
		t.canceled.Store(true)
	}
}

// When returns the scheduled absolute time.
func (t *Timer) When() float64 { return t.at }

// timerHeap orders timers by (time, insertion sequence) so simultaneous
// events fire deterministically in scheduling order.
type timerHeap []*Timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// live counts heap entries that have not been canceled.
func (h timerHeap) live() int {
	n := 0
	for _, t := range h {
		if !t.canceled.Load() {
			n++
		}
	}
	return n
}

// Sim is a virtual-time discrete-event loop. Not safe for concurrent
// use: a simulation is a single goroutine by construction.
type Sim struct {
	now     float64
	seq     uint64
	heap    timerHeap
	running bool
}

// NewSim returns a simulation loop starting at time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// At schedules fn at virtual time t.
func (s *Sim) At(t float64, fn func()) *Timer {
	if t < s.now {
		t = s.now
	}
	s.seq++
	tm := &Timer{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.heap, tm)
	return tm
}

// After schedules fn d seconds from the current virtual time.
func (s *Sim) After(d float64, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Defer schedules fn at the current virtual time, after already-queued
// same-instant events.
func (s *Sim) Defer(fn func()) { s.At(s.now, fn) }

// Step fires the next pending event, advancing virtual time. It reports
// whether an event ran.
func (s *Sim) Step() bool {
	for s.heap.Len() > 0 {
		tm := heap.Pop(&s.heap).(*Timer)
		if tm.canceled.Load() {
			continue
		}
		s.now = tm.at
		tm.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty or virtual time would pass
// until. It returns the number of events fired. On return the clock
// reads min(until, time of last event) — or exactly until if the queue
// drained earlier.
func (s *Sim) Run(until float64) int {
	n := 0
	for s.heap.Len() > 0 {
		next := s.heap[0]
		if next.canceled.Load() {
			heap.Pop(&s.heap)
			continue
		}
		if next.at > until {
			break
		}
		heap.Pop(&s.heap)
		s.now = next.at
		next.fn()
		n++
	}
	if s.now < until {
		s.now = until
	}
	return n
}

// RunFor advances the loop by d seconds of virtual time.
func (s *Sim) RunFor(d float64) int { return s.Run(s.now + d) }

// Pending returns the number of scheduled events still due to fire.
// Canceled timers linger in the heap until popped but are not work, so
// they are excluded — the count is a true queue-length gauge (sysNode).
func (s *Sim) Pending() int { return s.heap.live() }

// Real is a wall-clock loop. Callbacks still run one at a time on the
// loop goroutine; Post is the only entry point safe to call from other
// goroutines (e.g. a UDP reader).
type Real struct {
	mu     sync.Mutex
	cond   *sync.Cond
	heap   timerHeap
	seq    uint64
	posted []func()
	stop   bool
	start  time.Time
}

// NewReal returns a wall-clock loop; time zero is the moment of creation.
func NewReal() *Real {
	r := &Real{start: time.Now()}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Now returns seconds since the loop was created.
func (r *Real) Now() float64 { return time.Since(r.start).Seconds() }

// At schedules fn at absolute loop time t.
func (r *Real) At(t float64, fn func()) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	tm := &Timer{at: t, seq: r.seq, fn: fn}
	heap.Push(&r.heap, tm)
	r.cond.Signal()
	return tm
}

// After schedules fn d seconds from now.
func (r *Real) After(d float64, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return r.At(r.Now()+d, fn)
}

// Defer schedules fn to run as soon as possible on the loop.
func (r *Real) Defer(fn func()) { r.Post(fn) }

// Post enqueues fn from any goroutine; it runs on the loop goroutine.
func (r *Real) Post(fn func()) {
	r.mu.Lock()
	r.posted = append(r.posted, fn)
	r.mu.Unlock()
	r.cond.Signal()
}

// Pending returns the number of live scheduled timers plus posted
// functions not yet run — the Real counterpart of Sim.Pending, used by
// the sysNode introspection relation as a queue-length gauge. Canceled
// timers (e.g. transport retransmit timers voided by an ack) are
// excluded: they occupy the heap but are not work.
func (r *Real) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.heap.live() + len(r.posted)
}

// Stop makes Run return after the current handler.
func (r *Real) Stop() {
	r.mu.Lock()
	r.stop = true
	r.mu.Unlock()
	r.cond.Signal()
}

// Run processes posted functions and timers until Stop is called.
// It must be called from exactly one goroutine.
func (r *Real) Run() {
	for {
		r.mu.Lock()
		for {
			if r.stop {
				r.mu.Unlock()
				return
			}
			if len(r.posted) > 0 {
				break
			}
			if r.heap.Len() > 0 {
				next := r.heap[0]
				if next.canceled.Load() {
					heap.Pop(&r.heap)
					continue
				}
				wait := next.at - r.Now()
				if wait <= 0 {
					break
				}
				// Wake up when the timer is due or when signaled.
				t := time.AfterFunc(time.Duration(wait*float64(time.Second)), r.cond.Signal)
				r.cond.Wait()
				t.Stop()
				continue
			}
			r.cond.Wait()
		}
		// Collect runnable work under the lock, run it outside.
		var fns []func()
		fns = append(fns, r.posted...)
		r.posted = r.posted[:0]
		now := r.Now()
		var due []*Timer
		for r.heap.Len() > 0 {
			next := r.heap[0]
			if next.canceled.Load() {
				heap.Pop(&r.heap)
				continue
			}
			if next.at > now {
				break
			}
			heap.Pop(&r.heap)
			due = append(due, next)
		}
		r.mu.Unlock()
		for _, fn := range fns {
			fn()
		}
		for _, tm := range due {
			// Re-check at invocation time: an earlier callback in this
			// very batch may have canceled a timer collected with it.
			if !tm.canceled.Load() {
				tm.fn()
			}
		}
	}
}
