package eventloop

import (
	"testing"
	"time"
)

// TestRealPending covers the queue-length gauge the sysNode relation
// reports on wall-clock nodes.
func TestRealPending(t *testing.T) {
	r := NewReal()
	if r.Pending() != 0 {
		t.Fatalf("fresh loop pending = %d", r.Pending())
	}
	r.After(3600, func() {})
	r.Post(func() {})
	if r.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", r.Pending())
	}
	// Canceled timers linger in the heap but are not pending work —
	// an acked retransmit timer must not inflate the queue gauge.
	canceled := r.After(3600, func() {})
	canceled.Cancel()
	if r.Pending() != 2 {
		t.Fatalf("pending counts canceled timer: %d", r.Pending())
	}

	go r.Run()
	defer r.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for r.Pending() != 1 { // posted fn drains; the far timer stays
		if time.Now().After(deadline) {
			t.Fatalf("pending = %d, want 1", r.Pending())
		}
		time.Sleep(time.Millisecond)
	}
}
