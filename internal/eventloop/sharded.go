// Sharded parallel simulation: a ShardedSim partitions a deployment
// across P per-shard Sim loops and runs them concurrently in epochs
// bounded by a conservative lookahead, the classic conservative
// (Chandy-Misra-style) synchronization discipline specialized to a
// network whose minimum link latency is known up front.
//
// # Shard-ownership rule
//
// Every simulated entity (a node, its tables, its transport state) is
// pinned to exactly one shard and must only ever be touched from that
// shard's Sim: by handlers the shard runs during an epoch, or by the
// coordinator goroutine between epochs when every shard is quiescent.
// Cross-shard interaction happens exclusively through values exchanged
// at epoch barriers (see Exchanger) or through the AtBarrier control
// lane. Under this rule no handler ever observes concurrent execution,
// so all the single-threaded invariants Sim documents keep holding
// shard-locally — and the race detector will catch violations, because
// epoch execution really is parallel.
//
// # Determinism
//
// A ShardedSim run is reproducible, and — when barrier work is merged
// in a canonical order, as simnet does with its (timestamp, sender,
// sequence) datagram sort — bit-identical across shard counts: the
// epoch grid depends only on (lookahead, Run calls), every shard-local
// event order is fixed by its own (time, seq) heap, and all cross-shard
// scheduling happens on the coordinator goroutine at barriers, in a
// deterministic order. Wall-clock interleaving of shard goroutines
// within an epoch is invisible because shards share no mutable state.
package eventloop

import (
	"container/heap"
	"fmt"
	"math"
)

// Exchanger is barrier-time cross-shard glue: after every epoch the
// coordinator calls Exchange on the coordinator goroutine while all
// shards are quiescent. Implementations drain per-shard mailboxes and
// schedule the collected work onto destination shards in a canonical
// order (the network does this for datagrams). now is the epoch
// boundary just reached; everything exchanged must be scheduled at or
// after it — conservative lookahead has already guaranteed that for
// work generated during the epoch.
type Exchanger interface {
	Exchange(now float64)
}

// BarrierEvent is a handle to a control-lane callback scheduled with
// AtBarrier. Cancel prevents it from running; safe to call from the
// coordinator goroutine only.
type BarrierEvent struct {
	at       float64
	seq      uint64
	fn       func()
	canceled bool
	index    int
}

// Cancel prevents the control callback from running.
func (e *BarrierEvent) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

type barrierHeap []*BarrierEvent

func (h barrierHeap) Len() int { return len(h) }
func (h barrierHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h barrierHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *barrierHeap) Push(x any) {
	e := x.(*BarrierEvent)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *barrierHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// ShardedSim coordinates P Sim loops through conservative-lookahead
// epochs: every shard runs to the same epoch boundary (run-to-completion
// within its own timeline), then the coordinator — the goroutine calling
// Run — executes barrier work: registered Exchangers first, then due
// AtBarrier control callbacks, in (time, schedule-order) order.
//
// Shard 0 always executes on the coordinator goroutine, so a
// single-shard ShardedSim degenerates to a plain Sim run with a little
// barrier bookkeeping and no cross-goroutine traffic at all.
type ShardedSim struct {
	shards    []*Sim
	lookahead float64
	now       float64

	exchangers []Exchanger
	controls   barrierHeap
	ctlSeq     uint64

	work   []chan float64 // per worker shard: epoch boundary to run to
	result []chan int     // per worker shard: events fired
	closed bool
}

// NewShardedSim builds a coordinator over p shards with the given
// conservative lookahead (seconds). The lookahead must be positive and
// no larger than the minimum latency of any cross-shard interaction,
// or conservative synchronization is unsound.
func NewShardedSim(p int, lookahead float64) *ShardedSim {
	if p < 1 {
		p = 1
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("eventloop: non-positive lookahead %g", lookahead))
	}
	ss := &ShardedSim{lookahead: lookahead}
	for i := 0; i < p; i++ {
		ss.shards = append(ss.shards, NewSim())
	}
	ss.work = make([]chan float64, p)
	ss.result = make([]chan int, p)
	for i := 1; i < p; i++ {
		ss.work[i] = make(chan float64)
		ss.result[i] = make(chan int)
		go ss.worker(i)
	}
	return ss
}

// worker owns shard i (for i > 0) during epochs: it runs the shard to
// each boundary received on the work channel. The channel handshake is
// the happens-before edge that transfers shard ownership between the
// coordinator (at barriers) and the worker (during epochs).
func (ss *ShardedSim) worker(i int) {
	s := ss.shards[i]
	for end := range ss.work[i] {
		ss.result[i] <- s.Run(end)
	}
}

// Shards returns the shard count.
func (ss *ShardedSim) Shards() int { return len(ss.shards) }

// Shard returns shard i's loop. Entities pinned to shard i schedule
// exclusively on it; see the shard-ownership rule in the package docs.
func (ss *ShardedSim) Shard(i int) *Sim { return ss.shards[i] }

// Lookahead returns the epoch length in seconds.
func (ss *ShardedSim) Lookahead() float64 { return ss.lookahead }

// Now returns the global epoch floor: every shard's clock reads at
// least this. Between Run calls all shard clocks read exactly this.
func (ss *ShardedSim) Now() float64 { return ss.now }

// AddExchanger registers barrier-time cross-shard glue, called after
// every epoch in registration order.
func (ss *ShardedSim) AddExchanger(x Exchanger) {
	ss.exchangers = append(ss.exchangers, x)
}

// AtBarrier schedules fn on the coordinator goroutine at the first
// barrier whose time is >= t — the control lane for driver-level
// actions (spawning a node, killing one, installing a partition) that
// touch cross-shard state and therefore must run while every shard is
// quiescent. Callbacks due at the same barrier run in (t, schedule
// order). Coordinator goroutine only.
func (ss *ShardedSim) AtBarrier(t float64, fn func()) *BarrierEvent {
	if t < ss.now {
		t = ss.now
	}
	ss.ctlSeq++
	e := &BarrierEvent{at: t, seq: ss.ctlSeq, fn: fn}
	heap.Push(&ss.controls, e)
	return e
}

// runBarrier executes exchangers, then control callbacks due at or
// before the current global time.
func (ss *ShardedSim) runBarrier() {
	for _, x := range ss.exchangers {
		x.Exchange(ss.now)
	}
	for ss.controls.Len() > 0 && ss.controls[0].at <= ss.now {
		e := heap.Pop(&ss.controls).(*BarrierEvent)
		if !e.canceled {
			e.fn()
		}
	}
}

// runEpoch runs every shard to the boundary, shard 0 on the calling
// goroutine, and returns the number of events fired across shards.
func (ss *ShardedSim) runEpoch(end float64) int {
	for i := 1; i < len(ss.shards); i++ {
		ss.work[i] <- end
	}
	n := ss.shards[0].Run(end)
	for i := 1; i < len(ss.shards); i++ {
		n += <-ss.result[i]
	}
	return n
}

// Run advances the whole sharded simulation to the given global time,
// epoch by epoch, and returns the number of events fired. It must be
// called from one goroutine — the coordinator — which is also the only
// goroutine allowed to touch any shard between Run calls.
func (ss *ShardedSim) Run(until float64) int {
	if math.IsInf(until, 1) {
		panic("eventloop: ShardedSim.Run requires a finite horizon")
	}
	total := 0
	ss.runBarrier() // work due at the current instant (e.g. time-zero spawns)
	for ss.now < until {
		end := ss.now + ss.lookahead
		if end > until {
			end = until
		}
		total += ss.runEpoch(end)
		ss.now = end
		ss.runBarrier()
	}
	return total
}

// RunFor advances the simulation by d seconds of virtual time.
func (ss *ShardedSim) RunFor(d float64) int { return ss.Run(ss.now + d) }

// Pending sums pending events across shards (coordinator only, between
// Run calls).
func (ss *ShardedSim) Pending() int {
	n := 0
	for _, s := range ss.shards {
		n += s.Pending()
	}
	return n
}

// Close releases the worker goroutines. The ShardedSim must not be run
// afterwards; Close is idempotent.
func (ss *ShardedSim) Close() {
	if ss.closed {
		return
	}
	ss.closed = true
	for i := 1; i < len(ss.shards); i++ {
		close(ss.work[i])
	}
}
