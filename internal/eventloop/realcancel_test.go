package eventloop

import (
	"testing"
	"time"
)

// TestRealCanceledTimerInSameBatchDoesNotFire is the regression test
// for a Run bug: due callbacks were collected under the lock and run
// outside it, so a Cancel issued by an earlier callback in the same
// batch still let the canceled one execute. Cancellation must be
// honored at invocation time.
func TestRealCanceledTimerInSameBatchDoesNotFire(t *testing.T) {
	r := NewReal()
	fired := make(chan bool, 2)
	done := make(chan struct{})

	var victim *Timer
	// Both timers are due at time zero, so Run collects them in one
	// batch; the canceller was scheduled first and runs first.
	r.At(0, func() { victim.Cancel() })
	victim = r.At(0, func() { fired <- true })
	r.At(0.05, func() { close(done) })

	go r.Run()
	defer r.Stop()

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("loop never drained")
	}
	select {
	case <-fired:
		t.Fatal("canceled timer fired despite being in the same batch as its canceller")
	default:
	}
}

// TestRealPostCancelsDueTimer covers the posted-function variant: posted
// work runs before due timers in a batch and must be able to void them.
func TestRealPostCancelsDueTimer(t *testing.T) {
	r := NewReal()
	fired := make(chan bool, 2)
	done := make(chan struct{})

	victim := r.At(0, func() { fired <- true })
	r.Post(func() { victim.Cancel() })
	r.At(0.05, func() { close(done) })

	go r.Run()
	defer r.Stop()

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("loop never drained")
	}
	select {
	case <-fired:
		t.Fatal("canceled timer fired despite the posted Cancel running first")
	default:
	}
}
