package eventloop

import (
	"sort"
	"sync/atomic"
	"testing"
)

// TestShardedEpochGrid checks that shards advance in lockstep epochs
// and that clocks agree with the global floor at every barrier.
func TestShardedEpochGrid(t *testing.T) {
	ss := NewShardedSim(3, 0.002)
	defer ss.Close()
	var boundaries []float64
	ss.AddExchanger(exchangerFunc(func(now float64) {
		boundaries = append(boundaries, now)
		for i := 0; i < ss.Shards(); i++ {
			if got := ss.Shard(i).Now(); got != now {
				t.Fatalf("shard %d clock %g at barrier %g", i, got, now)
			}
		}
	}))
	ss.Run(0.01)
	if ss.Now() != 0.01 {
		t.Fatalf("global now %g, want 0.01", ss.Now())
	}
	// Barrier at time zero, then one per epoch.
	want := []float64{0, 0.002, 0.004, 0.006, 0.008, 0.01}
	if len(boundaries) != len(want) {
		t.Fatalf("barriers %v, want %v", boundaries, want)
	}
	for i := range want {
		if boundaries[i] != want[i] {
			t.Fatalf("barrier %d at %g, want %g", i, boundaries[i], want[i])
		}
	}
}

type exchangerFunc func(now float64)

func (f exchangerFunc) Exchange(now float64) { f(now) }

// TestShardedRunCountsEvents checks that Run sums events across shards.
func TestShardedRunCountsEvents(t *testing.T) {
	ss := NewShardedSim(2, 0.01)
	defer ss.Close()
	ran := [2]int{}
	for i := 0; i < 2; i++ {
		i := i
		for k := 0; k < 5; k++ {
			ss.Shard(i).After(float64(k)*0.005, func() { ran[i]++ })
		}
	}
	if n := ss.Run(1); n != 10 {
		t.Fatalf("Run reported %d events, want 10", n)
	}
	if ran[0] != 5 || ran[1] != 5 {
		t.Fatalf("per-shard runs %v, want 5 each", ran)
	}
}

// TestAtBarrierOrdering checks the control lane: callbacks run at the
// first barrier at or after their time, in (time, schedule order), and
// Cancel suppresses them.
func TestAtBarrierOrdering(t *testing.T) {
	ss := NewShardedSim(2, 0.002)
	defer ss.Close()
	var order []string
	ss.AtBarrier(0.003, func() { order = append(order, "b") })
	ss.AtBarrier(0.003, func() { order = append(order, "c") })
	ss.AtBarrier(0, func() { order = append(order, "a") })
	ev := ss.AtBarrier(0.005, func() { order = append(order, "x") })
	ev.Cancel()
	// Control callbacks may schedule more control callbacks.
	ss.AtBarrier(0.001, func() {
		ss.AtBarrier(0.006, func() { order = append(order, "d") })
	})
	ss.Run(0.01)
	want := "abcd"
	got := ""
	for _, s := range order {
		got += s
	}
	if got != want {
		t.Fatalf("barrier order %q, want %q", got, want)
	}
}

// TestAtBarrierRunsAtEpochBoundary checks a control callback due
// mid-epoch fires at the next boundary, not before.
func TestAtBarrierRunsAtEpochBoundary(t *testing.T) {
	ss := NewShardedSim(1, 0.002)
	defer ss.Close()
	at := -1.0
	ss.AtBarrier(0.0031, func() { at = ss.Now() })
	ss.Run(0.01)
	if at != 0.004 {
		t.Fatalf("control ran at %g, want 0.004", at)
	}
}

// TestShardedConcurrentShards is the -race regression for the
// shard-ownership rule: two shard loops run genuinely concurrently
// through the coordinator, each hammering its own timers, DPC ring, and
// timer pool, with cross-shard work injected at every barrier. Any
// coordinator/worker handoff bug shows up as a data race here.
func TestShardedConcurrentShards(t *testing.T) {
	ss := NewShardedSim(2, 0.001)
	defer ss.Close()
	var fired [2]atomic.Int64
	// Self-perpetuating per-shard load: timers that defer, re-arm via
	// the pooled path, and cancel siblings.
	for i := 0; i < ss.Shards(); i++ {
		i := i
		s := ss.Shard(i)
		var tick func()
		tick = func() {
			fired[i].Add(1)
			s.Defer(func() { fired[i].Add(1) })
			victim := s.After(0.0004, func() { fired[i].Add(1) })
			victim.Cancel()
			s.AfterFree(0.0003, tick)
		}
		s.After(0, tick)
	}
	// Cross-shard traffic through the barrier lane: every epoch the
	// coordinator schedules one event onto each shard.
	ss.AddExchanger(exchangerFunc(func(now float64) {
		for i := 0; i < ss.Shards(); i++ {
			i := i
			ss.Shard(i).At(now+0.001, func() { fired[i].Add(1) })
		}
	}))
	ss.Run(0.5)
	for i := range fired {
		if fired[i].Load() == 0 {
			t.Fatalf("shard %d never fired", i)
		}
	}
}

// TestShardedDeterministicAcrossShardCounts runs the same toy workload
// under 1 and 3 shards — entities ticking on their own shards and
// messaging each other through per-shard outboxes merged canonically at
// barriers — and checks the per-entity event traces are identical. This
// is the eventloop-level shape of the guarantee simnet and the harness
// build on; simnet's sharded tests exercise it with real datagrams.
func TestShardedDeterministicAcrossShardCounts(t *testing.T) {
	run := func(p int) [][]float64 {
		const entities = 6
		const latency = 0.002 // >= lookahead, so barrier merge is sound
		ss := NewShardedSim(p, latency)
		defer ss.Close()
		// One trace slice per entity: entity e's slice is only ever
		// appended to from e's own shard (or the coordinator at
		// barriers), per the shard-ownership rule.
		got := make([][]float64, entities)
		shardOf := func(e int) *Sim { return ss.Shard(e % p) }
		outbox := make([][]testMsg, p)
		// Each entity ticks on its own cadence; every tick records the
		// instant and sends a message to the next entity, which records
		// the delivery instant too.
		for e := 0; e < entities; e++ {
			e := e
			s := shardOf(e)
			var tick func()
			tick = func() {
				got[e] = append(got[e], s.Now())
				outbox[e%p] = append(outbox[e%p], testMsg{at: s.Now() + latency, src: e, dst: (e + 1) % entities})
				s.AfterFree(0.0037+float64(e)*0.0001, tick)
			}
			s.After(float64(e)*0.0011, tick)
		}
		ss.AddExchanger(exchangerFunc(func(now float64) {
			var all []testMsg
			for i := range outbox {
				all = append(all, outbox[i]...)
				outbox[i] = outbox[i][:0]
			}
			// Canonical merge order: (timestamp, source entity).
			sort.Slice(all, func(i, j int) bool {
				if all[i].at != all[j].at {
					return all[i].at < all[j].at
				}
				return all[i].src < all[j].src
			})
			for _, m := range all {
				m := m
				shardOf(m.dst).At(m.at, func() {
					got[m.dst] = append(got[m.dst], m.at)
				})
			}
		}))
		ss.Run(0.2)
		return got
	}
	a, b := run(1), run(3)
	for e := range a {
		if len(a[e]) != len(b[e]) {
			t.Fatalf("entity %d fired %d vs %d times", e, len(a[e]), len(b[e]))
		}
		for i := range a[e] {
			if a[e][i] != b[e][i] {
				t.Fatalf("entity %d event %d at %g vs %g", e, i, a[e][i], b[e][i])
			}
		}
	}
}

// testMsg is one cross-entity message in the determinism test.
type testMsg struct {
	at       float64
	src, dst int
}
