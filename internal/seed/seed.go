// Package seed derives per-address random streams from a master seed.
//
// Everything that shapes an individual node in a deployment — its
// engine randomness, its churn session length, its loss pattern in the
// simulated network — must come from a pure function of (master seed,
// address), never from a shared stream, so that one node's outcomes are
// independent of how other nodes' events interleave. That independence
// is what makes a sharded simulation bit-identical to a single-loop
// one: the values cannot depend on draw order.
package seed

import "hash/fnv"

// For derives the random-stream seed for one concern ("node", "session",
// ...) at one address from the master seed. Pure function: outcomes
// never depend on call order.
func For(master int64, concern, addr string) int64 {
	h := fnv.New64a()
	h.Write([]byte(concern))
	h.Write([]byte{0})
	h.Write([]byte(addr))
	return master ^ int64(h.Sum64())
}
