// Monitor: run a Chord DHT while a five-rule OverLog monitor — written
// against the sys* system tables and installed at runtime with
// Node.Install — aggregates overlay-wide tuple counts at a hub node.
// Nothing in the Chord specification knows it is being watched: the
// monitor is just more OverLog grafted into each node's live dataflow,
// the paper's introspection story (§3.5) made concrete.
//
//	go run ./examples/monitor
package main

import (
	"fmt"
	"log"

	"p2"
)

const n = 12

// monitorSource is the five-rule monitor. M1 continuously sums the
// tuples stored across each node's application relations (a table
// aggregate over the sysTable system table). M2 ships the local total
// to the hub every 5 s. M3 folds the per-node reports into one
// overlay-wide total at the hub; reports are soft state with a 15 s
// lifetime, so totals from dead nodes fade. M4 keeps a soft-state set
// of nodes storing unusually many tuples; M5 does the same for rules
// that have fired heavily, straight from sysRule.
const monitorSource = `
	materialize(hub, infinity, 1, keys(1)).
	materialize(tupleTotal, infinity, 1, keys(1)).
	materialize(nodeReport, 15, infinity, keys(2)).
	materialize(overlayTuples, infinity, 1, keys(1)).
	materialize(hotNode, 15, infinity, keys(2)).
	materialize(busyRule, 15, infinity, keys(2)).
	define(hotTuples, 200).
	define(hotFires, 1000).

	M1 tupleTotal@N(N, sum<C>) :- sysTable@N(N, T, C, I, D, R).
	M2 nodeReport@H(H, N, C) :- periodic@N(N, E, 5), tupleTotal@N(N, C), hub@N(N, H).
	M3 overlayTuples@H(H, sum<C>) :- nodeReport@H(H, N, C).
	M4 hotNode@H(H, N, C) :- nodeReport@H(H, N, C), C > hotTuples.
	M5 busyRule@N(N, R, F) :- sysRule@N(N, R, F), F > hotFires.
`

func main() {
	plan, err := p2.Compile(p2.ChordSource, nil)
	if err != nil {
		log.Fatal(err)
	}
	d, err := p2.NewDeployment(p2.Simulated, p2.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	hub := "n00:p2"

	var nodes []*p2.Handle
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("n%02d:p2", i)
		node, err := d.Spawn(addr, plan)
		if err != nil {
			log.Fatal(err)
		}
		landmark := "-"
		if i > 0 {
			landmark = hub
		}
		node.AddFact("landmark", p2.Str(addr), p2.Str(landmark))
		node.AddFact("join", p2.Str(addr), p2.Str(addr+"!boot"))
		nodes = append(nodes, node)
		d.Run(1) // stagger joins
	}

	// The ring is already building; graft the monitor into every live
	// node. The hub fact points each node's reports at n00.
	for _, node := range nodes {
		if err := node.Install(monitorSource); err != nil {
			log.Fatal(err)
		}
		node.AddFact("hub", p2.Str(node.Addr()), p2.Str(hub))
	}
	fmt.Printf("installed 5-rule monitor on %d nodes, hub %s\n\n", n, hub)

	// Let the overlay and its observer run; report the hub's view.
	for step := 0; step < 6; step++ {
		d.Run(30)
		total := int64(-1)
		if rows := nodes[0].Scan("overlayTuples"); len(rows) == 1 {
			total = rows[0].Field(1).AsInt()
		}
		reports := nodes[0].TableLen("nodeReport")
		fmt.Printf("%7.1fs  overlay total %4d tuples across %2d reporting nodes\n",
			d.Now(), total, reports)
	}

	fmt.Printf("\nnodes above %s tuples (hub's hotNode table):\n", "hotTuples=200")
	for _, row := range nodes[0].ScanSorted("hotNode") {
		fmt.Printf("  %s stores %d tuples\n", row.Field(1).AsStr(), row.Field(2).AsInt())
	}
	fmt.Println("\nrules past hotFires=1000 firings at the hub (busyRule, fed by sysRule):")
	for _, row := range nodes[0].ScanSorted("busyRule") {
		fmt.Printf("  %-4s fired %d times\n", row.Field(1).AsStr(), row.Field(2).AsInt())
	}

	// The monitor can watch the monitors: per-rule fire counts of the
	// monitor rules themselves, read from sysRule like any relation.
	fmt.Println("\nmonitor rule activity at the hub (from sysRule):")
	for _, row := range nodes[0].ScanSorted(p2.SysRule) {
		id := row.Field(1).AsStr()
		if id == "M1" || id == "M2" || id == "M3" || id == "M4" || id == "M5" {
			fmt.Printf("  %s fired %d times\n", id, row.Field(2).AsInt())
		}
	}
}
