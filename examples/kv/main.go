// KV: run the replicated key-value service over real UDP sockets —
// the Chord spec plus the KV rules compiled into one dataflow — then
// kill the owner of a live key mid-run and read the key back from the
// survivors. The value comes back at the acked version because every
// PUT was replicated onto the owner's successor list before the
// client saw its ack.
//
//	go run ./examples/kv
//
// The protocol timers are compressed via define overrides so the ring
// converges (and re-converges after the kill) in wall-clock seconds.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"p2"
)

func main() {
	base := flag.Int("base", 9481, "first UDP port; nodes bind 127.0.0.1:base..base+nodes-1")
	nodes := flag.Int("nodes", 8, "ring size")
	flag.Parse()

	// Compressed timers: stabilization every second, failure detection
	// after 4s of silence, KV anti-entropy every 2s.
	plan, err := p2.CompileMulti(map[string]p2.Value{
		"tFix":       p2.Int(2),
		"tStabilize": p2.Int(1),
		"tPing":      p2.Int(1),
		"tJoinRetry": p2.Int(3),
		"tRejoinAll": p2.Int(10),
		"tDead":      p2.Int(4),
		"tKvSync":    p2.Int(2),
	}, p2.ChordSource, p2.KVSource)
	if err != nil {
		log.Fatal(err)
	}
	d, err := p2.NewDeployment(p2.UDP, p2.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	landmark := addr(*base, 0)
	var handles []*p2.Handle
	for i := 0; i < *nodes; i++ {
		a := addr(*base, i)
		h, err := d.Spawn(a, plan)
		if err != nil {
			log.Fatal(err)
		}
		lm := "-"
		if i > 0 {
			lm = landmark
		}
		h.AddFact("landmark", p2.Str(a), p2.Str(lm))
		h.AddFact("join", p2.Str(a), p2.Str(a+"!boot"))
		handles = append(handles, h)
	}

	fmt.Printf("kv: %d-node UDP ring converging ...\n", *nodes)
	waitRing(d, *nodes, 60*time.Second)

	// Write a handful of keys from different nodes; each Put returns
	// once kvQuorum replicas acked the write.
	keys := []string{"alpha", "beta", "gamma", "delta"}
	for i, k := range keys {
		op, err := handles[i%len(handles)].Put(k, "value-of-"+k)
		if err != nil {
			log.Fatal(err)
		}
		if !op.Wait(20 * time.Second) {
			log.Fatalf("kv: put %q never reached quorum", k)
		}
		fmt.Printf("kv: put %-6s = %q acked at version %d (R=%d, quorum %d)\n",
			k, "value-of-"+k, op.Ver, p2.KVReplicas, p2.KVQuorum)
	}

	// Kill the node that owns "alpha" — the worst-case victim: it holds
	// the primary copy and answers GETs for the key.
	victim := owner(p2.Hash("alpha"), d.Addrs())
	fmt.Printf("kv: killing %s, the owner of %q\n", victim, "alpha")
	d.Kill(victim)

	// Failure detection (tDead) plus a few stabilization rounds let the
	// successor inherit ownership; the KV anti-entropy keeps the
	// replica count at R on the new ring.
	time.Sleep(12 * time.Second)

	var reader *p2.Handle
	for _, h := range handles {
		if h.Addr() != victim {
			reader = h
			break
		}
	}
	for _, k := range keys {
		op := getRetry(reader, k, 6)
		if op == nil {
			log.Fatalf("kv: get %q never completed after the kill", k)
		}
		if !op.Found || op.Value != "value-of-"+k {
			log.Fatalf("kv: get %q after the kill: found=%v value=%q", k, op.Found, op.Value)
		}
		fmt.Printf("kv: get %-6s -> %q (version %d, stale=%v)\n", k, op.Value, op.Ver, op.Stale)
	}
	fmt.Println("kv: every key survived the owner's failure")
}

// getRetry issues a GET and reissues it if it times out or misses —
// operations are single-shot datagram flows, so a request routed
// through a not-yet-repaired finger right after a failure is simply
// lost, and the client (as any real client would) retries.
func getRetry(h *p2.Handle, key string, attempts int) *p2.KVOp {
	for i := 0; i < attempts; i++ {
		op, err := h.Get(key)
		if err != nil {
			log.Fatal(err)
		}
		if op.Wait(8*time.Second) && op.Found {
			return op
		}
	}
	return nil
}

func addr(base, i int) string { return fmt.Sprintf("127.0.0.1:%d", base+i) }

// waitRing polls until every node's bestSucc matches the ideal ring.
func waitRing(d *p2.Deployment, n int, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for {
		addrs := d.Addrs()
		sort.Slice(addrs, func(i, j int) bool {
			return p2.Hash(addrs[i]).Less(p2.Hash(addrs[j]))
		})
		correct := 0
		for i, a := range addrs {
			node := d.Node(a)
			if node == nil {
				continue
			}
			if rows := node.Scan("bestSucc"); len(rows) == 1 &&
				rows[0].Field(2).AsStr() == addrs[(i+1)%len(addrs)] {
				correct++
			}
		}
		if correct == n {
			fmt.Printf("kv: ring correct (%d/%d)\n", correct, n)
			return
		}
		if time.Now().After(deadline) {
			log.Fatalf("kv: ring never converged (%d/%d correct)", correct, n)
		}
		time.Sleep(500 * time.Millisecond)
	}
}

// owner is the Chord successor of key among addrs: the first node
// identifier at or past the key on the ring, wrapping to the smallest.
func owner(key p2.ID, addrs []string) string {
	sort.Slice(addrs, func(i, j int) bool {
		return p2.Hash(addrs[i]).Less(p2.Hash(addrs[j]))
	})
	for _, a := range addrs {
		if !p2.Hash(a).Less(key) {
			return a
		}
	}
	return addrs[0]
}
