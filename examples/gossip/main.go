// Gossip: seed one rumor at one node of a 30-node push epidemic and
// measure how infection spreads round by round — the classic
// logarithmic epidemic curve, in four OverLog rules.
//
//	go run ./examples/gossip
package main

import (
	"fmt"
	"log"
	"math/rand"

	"p2"
)

const n = 30

func main() {
	plan, err := p2.Compile(p2.GossipSource, nil)
	if err != nil {
		log.Fatal(err)
	}
	d, err := p2.NewDeployment(p2.Simulated, p2.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	rng := rand.New(rand.NewSource(11))

	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("g%02d:gossip", i)
	}
	var nodes []*p2.Handle
	for i, addr := range addrs {
		node, err := d.Spawn(addr, plan)
		if err != nil {
			log.Fatal(err)
		}
		// Every node knows 4 random peers.
		for _, p := range rng.Perm(n)[:5] {
			if addrs[p] != addr {
				node.AddFact("peer", p2.Str(addr), p2.Str(addrs[p]))
			}
		}
		nodes = append(nodes, node)
		_ = i
	}

	// Seed the rumor at node 0.
	nodes[0].AddFact("rumor", p2.Str(addrs[0]), p2.Str("r1"), p2.Str("the-payload"))

	infected := func() int {
		c := 0
		for _, node := range nodes {
			if node.TableLen("rumor") > 0 {
				c++
			}
		}
		return c
	}

	fmt.Println("round  time   infected")
	round := 0
	for infected() < n && round < 40 {
		fmt.Printf("%5d  %4.0fs  %d/%d\n", round, d.Now(), infected(), n)
		d.Run(2) // one gossip period
		round++
	}
	fmt.Printf("%5d  %4.0fs  %d/%d\n", round, d.Now(), infected(), n)
	if infected() == n {
		fmt.Printf("\nfully infected after %d rounds (~log2(%d)=%.1f expected for push epidemics)\n",
			round, n, logish(n))
	}
}

func logish(n int) float64 {
	r, v := 0.0, 1.0
	for v < float64(n) {
		v *= 2
		r++
	}
	return r
}
