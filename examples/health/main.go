// Health: run a small Chord ring over real UDP sockets with the
// Prometheus metrics endpoint enabled, kill a node mid-run to provoke
// the failure classifier, and scrape /metrics to watch the health
// conditions react — the operability subsystem end to end.
//
//	go run ./examples/health
//	curl -s localhost:9090/metrics | grep p2_
//
// Every number served comes from the same introspection counters the
// sys* tables expose; the conditions (Converged, Partitioned, ...) are
// evaluated on each node's event loop and the transport classifies
// every abandoned tuple by cause (RetryExhausted, SessionClosed,
// PeerDead, BacklogOverflow).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"p2"
)

func main() {
	metrics := flag.String("metrics", ":9090", "Prometheus listen address (\":0\" picks a free port)")
	base := flag.Int("base", 9181, "first UDP port; nodes bind 127.0.0.1:base..base+nodes-1")
	nodes := flag.Int("nodes", 4, "ring size")
	run := flag.Duration("run", 25*time.Second, "total run time")
	flag.Parse()

	plan, err := p2.Compile(p2.ChordSource, nil)
	if err != nil {
		log.Fatal(err)
	}
	d, err := p2.NewDeployment(p2.UDP, p2.WithSeed(7), p2.WithMetrics(*metrics))
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	url := "http://" + hostify(d.MetricsAddr()) + "/metrics"
	fmt.Printf("health: metrics at %s\n", url)

	landmark := addr(*base, 0)
	for i := 0; i < *nodes; i++ {
		a := addr(*base, i)
		h, err := d.Spawn(a, plan)
		if err != nil {
			log.Fatal(err)
		}
		lm := "-"
		if i > 0 {
			lm = landmark
		}
		h.AddFact("landmark", p2.Str(a), p2.Str(lm))
		h.AddFact("join", p2.Str(a), p2.Str(a+"!boot"))
		// The shipped monitor library: healthAlarm et al. become live
		// relations on every node.
		if err := h.Install(p2.HealthMonitorSource()); err != nil {
			log.Fatal(err)
		}
	}

	third := *run / 3
	fmt.Printf("health: %d-node ring building; first scrape in %v\n", *nodes, third)
	time.Sleep(third)
	scrape(url, "p2_condition")

	victim := addr(*base, *nodes-1)
	fmt.Printf("health: killing %s — drops should classify and Partitioned raise\n", victim)
	d.Kill(victim)
	time.Sleep(third)
	scrape(url, "p2_drops_total")
	scrape(url, "p2_condition")

	time.Sleep(third)
	snap := d.HealthSnapshot()
	fmt.Printf("health: overlay rollup at t=%.1fs\n", snap.Time)
	for _, c := range snap.Overlay {
		fmt.Printf("  %-22s %-8s %s\n", c.Type, c.Status, c.Reason)
	}
}

func addr(base, i int) string { return fmt.Sprintf("127.0.0.1:%d", base+i) }

// hostify turns a listener address like ":9090" or "[::]:9090" into
// something curl can dial.
func hostify(a string) string {
	if strings.HasPrefix(a, ":") {
		return "127.0.0.1" + a
	}
	if strings.HasPrefix(a, "[::]") {
		return "127.0.0.1" + strings.TrimPrefix(a, "[::]")
	}
	return a
}

// scrape fetches the metrics page and prints the lines of one family —
// exactly what `curl -s .../metrics | grep p2_...` shows.
func scrape(url, family string) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("scrape: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatalf("scrape: %v", err)
	}
	fmt.Printf("health: scrape | grep %s\n", family)
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, family+"{") {
			fmt.Println("  " + line)
		}
	}
}
