// Chord: build a 20-node Chord DHT purely by executing the 47-rule
// OverLog specification, watch the ring converge, then resolve lookups
// and print the routes they take — the paper's Section 4 scenario as a
// runnable program.
//
// The whole scenario is expressed against the runtime-agnostic
// Deployment API — here on a four-shard simulated deployment; swapping
// the NewDeployment call to p2.UDP would run the identical call
// sequence over real sockets.
//
//	go run ./examples/chord
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"p2"
)

const n = 20

func main() {
	plan, err := p2.Compile(p2.ChordSource, nil)
	if err != nil {
		log.Fatal(err)
	}
	// Four parallel shards: same results as one, just faster at scale.
	d, err := p2.NewDeployment(p2.Simulated, p2.WithSeed(7), p2.WithShards(4))
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	// Node 0 creates the ring (landmark "-"); the rest join through it.
	var nodes []*p2.Handle
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("n%02d:p2", i)
		node, err := d.Spawn(addr, plan)
		if err != nil {
			log.Fatal(err)
		}
		landmark := "-"
		if i > 0 {
			landmark = "n00:p2"
		}
		node.AddFact("landmark", p2.Str(addr), p2.Str(landmark))
		node.AddFact("join", p2.Str(addr), p2.Str(addr+"!boot"))
		nodes = append(nodes, node)
		d.Run(1) // stagger joins
	}

	fmt.Println("stabilizing ...")
	d.Run(180)

	// Print the ring in identifier order with each node's view.
	type entry struct {
		id   p2.ID
		addr string
	}
	ring := make([]entry, 0, n)
	for _, node := range nodes {
		ring = append(ring, entry{p2.Hash(node.Addr()), node.Addr()})
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].id.Less(ring[j].id) })

	correct := 0
	fmt.Println("\nring (sorted by identifier):")
	for i, e := range ring {
		node := d.Node(e.addr)
		succ := "?"
		if rows := node.Scan("bestSucc"); len(rows) == 1 {
			succ = rows[0].Field(2).AsStr()
		}
		ideal := ring[(i+1)%len(ring)].addr
		mark := "OK"
		if succ != ideal {
			mark = "WRONG (want " + ideal + ")"
		} else {
			correct++
		}
		fmt.Printf("  %s  %s -> %s  %s\n", e.id.Short(), e.addr, succ, mark)
	}
	fmt.Printf("ring correctness: %d/%d\n\n", correct, n)

	// Resolve a few keys, tracing the route each lookup takes.
	for _, name := range []string{"alpha", "beta", "gamma"} {
		key := p2.Hash(name)
		resolveAndTrace(d, nodes, key, name)
	}
}

func resolveAndTrace(d *p2.Deployment, nodes []*p2.Handle, key p2.ID, name string) {
	from := nodes[3]
	eid := "query-" + name
	// Watch callbacks fire on the owning shard's goroutine while the
	// simulation runs, so this cross-node trace takes its own lock.
	var mu sync.Mutex
	var hops []string
	var owner string

	for _, node := range nodes {
		node.Watch("lookup", func(ev p2.WatchEvent) {
			if ev.Dir == p2.DirSent && ev.Tuple.Field(3).AsStr() == eid {
				mu.Lock()
				hops = append(hops, ev.Node+" -> "+ev.Peer)
				mu.Unlock()
			}
		})
	}
	from.Watch("lookupResults", func(ev p2.WatchEvent) {
		if ev.Tuple.Field(4).AsStr() == eid {
			mu.Lock()
			owner = ev.Tuple.Field(3).AsStr()
			mu.Unlock()
		}
	})

	from.Inject(p2.NewTuple("lookup",
		p2.Str(from.Addr()), p2.IDValue(key), p2.Str(from.Addr()), p2.Str(eid)))
	d.Run(10)

	fmt.Printf("lookup %q (key %s) from %s:\n", name, key.Short(), from.Addr())
	for _, h := range hops {
		fmt.Println("    ", h)
	}
	fmt.Printf("  owner: %s (%d hops)\n\n", owner, len(hops))
}
