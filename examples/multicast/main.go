// Multicast: compose two separately-written overlay specifications —
// the Narada mesh and a mesh-multicast layer — into a single dataflow
// with p2.CompileMulti. The multicast rules read the neighbor table the
// mesh rules maintain; neither spec knows the other exists. This is the
// paper's multi-overlay sharing (§1) as a runnable program, and the
// "two layers of Narada" its introduction describes.
//
//	go run ./examples/multicast
package main

import (
	"fmt"
	"log"

	"p2"
)

const n = 12

func main() {
	plan, err := p2.CompileMulti(nil, p2.NaradaSource, p2.MeshMulticastSource)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged plan: %d rules, shared tables include neighbor=%v seenMsg=%v\n\n",
		plan.RuleCount(), plan.IsTable("neighbor"), plan.IsTable("seenMsg"))

	d, err := p2.NewDeployment(p2.Simulated, p2.WithSeed(21))
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("node%02d:mc", i)
	}
	var nodes []*p2.Handle
	deliveries := 0
	for i := 0; i < n; i++ {
		node, err := d.Spawn(addrs[i], plan)
		if err != nil {
			log.Fatal(err)
		}
		// Ring bootstrap; the mesh gossip densifies membership.
		node.AddFact("env", p2.Str(addrs[i]), p2.Str("neighbor"), p2.Str(addrs[(i+1)%n]))
		node.Watch("deliver", func(ev p2.WatchEvent) {
			if ev.Dir == p2.DirDerived {
				deliveries++
				fmt.Printf("t=%5.2fs  %-12s got %q (msg %s)\n",
					ev.Time, ev.Node, ev.Tuple.Field(2).AsStr(), ev.Tuple.Field(1).AsStr())
			}
		})
		nodes = append(nodes, node)
	}

	fmt.Println("mesh forming (20 s) ...")
	d.Run(20)

	fmt.Println("\npublishing from node00:")
	nodes[0].Inject(p2.NewTuple("message",
		p2.Str(addrs[0]), p2.Str("msg-1"), p2.Str("hello, mesh"), p2.Str("-")))
	d.Run(10)

	fmt.Printf("\n%d deliveries across %d nodes (each exactly once)\n", deliveries, n)
}
