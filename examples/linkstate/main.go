// Linkstate: declarative distance-vector routing over a declared link
// topology (the Section 7 "link-state- and path-vector-based overlays"
// direction, in the style of declarative routing). Builds a small
// weighted graph, lets the eight DV rules converge, prints each node's
// routing table, then breaks a link and shows rerouting.
//
//	go run ./examples/linkstate
package main

import (
	"fmt"
	"log"

	"p2"
)

func main() {
	plan, err := p2.Compile(p2.LinkStateSource, nil)
	if err != nil {
		log.Fatal(err)
	}
	d, err := p2.NewDeployment(p2.Simulated, p2.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	//      1        1
	//  sf ─── den ─── chi
	//   │              │
	//   └──────8───────┘     plus chi ─1─ nyc
	names := []string{"sf", "den", "chi", "nyc"}
	nodes := map[string]*p2.Handle{}
	for _, name := range names {
		n, err := d.Spawn(name+":rt", plan)
		if err != nil {
			log.Fatal(err)
		}
		nodes[name] = n
	}
	link := func(x, y string, cost int64) {
		nodes[x].AddFact("link", p2.Str(x+":rt"), p2.Str(y+":rt"), p2.Int(cost))
		nodes[y].AddFact("link", p2.Str(y+":rt"), p2.Str(x+":rt"), p2.Int(cost))
	}
	link("sf", "den", 1)
	link("den", "chi", 1)
	link("chi", "nyc", 1)
	link("sf", "chi", 8)

	d.Run(40)
	printTables(nodes, names, "routing tables after convergence:")

	fmt.Println("\nbreaking the den–chi link (den goes down) ...")
	nodes["den"].Kill()
	d.Run(60)
	printTables(nodes, names, "routing tables after failure (sf reroutes via the cost-8 link):")
}

func printTables(nodes map[string]*p2.Handle, names []string, label string) {
	fmt.Println(label)
	for _, name := range names {
		n := nodes[name]
		if !n.Running() {
			fmt.Printf("  %-4s (down)\n", name)
			continue
		}
		fmt.Printf("  %-4s", name)
		for _, row := range n.ScanSorted("bestPath") {
			fmt.Printf("  ->%s via %s cost %d;",
				short(row.Field(1).AsStr()), short(row.Field(2).AsStr()), row.Field(3).AsInt())
		}
		fmt.Println()
	}
}

func short(addr string) string {
	for i := 0; i < len(addr); i++ {
		if addr[i] == ':' {
			return addr[:i]
		}
	}
	return addr
}
