// Narada: run the §2.3 mesh-membership overlay on eight nodes wired in
// a sparse bootstrap graph, and watch epidemic membership propagation
// give every node the full member list; then kill a node and watch the
// mesh declare it dead.
//
//	go run ./examples/narada
package main

import (
	"fmt"
	"log"
)

import "p2"

const n = 8

func main() {
	plan, err := p2.Compile(p2.NaradaSource, nil)
	if err != nil {
		log.Fatal(err)
	}
	d, err := p2.NewDeployment(p2.Simulated, p2.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	// Bootstrap topology: a ring of neighbor hints via env() rows —
	// node i knows only node (i+1) mod n.
	var nodes []*p2.Handle
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		addrs[i] = fmt.Sprintf("m%d:narada", i)
	}
	for i := 0; i < n; i++ {
		node, err := d.Spawn(addrs[i], plan)
		if err != nil {
			log.Fatal(err)
		}
		node.AddFact("env", p2.Str(addrs[i]), p2.Str("neighbor"), p2.Str(addrs[(i+1)%n]))
		nodes = append(nodes, node)
	}

	report := func(label string) {
		fmt.Printf("%s\n", label)
		for _, node := range nodes {
			if !node.Running() {
				fmt.Printf("  %-12s (dead)\n", node.Addr())
				continue
			}
			live, dead := 0, 0
			for _, row := range node.Scan("member") {
				if row.Field(4).AsBool() {
					live++
				} else {
					dead++
				}
			}
			fmt.Printf("  %-12s knows %d live, %d dead members; %d neighbors\n",
				node.Addr(), live, dead, node.TableLen("neighbor"))
		}
	}

	d.Run(30)
	report("after 30 s of gossip (every node should know all 8 members):")

	victim := nodes[5]
	fmt.Printf("\nkilling %s ...\n\n", victim.Addr())
	victim.Kill()
	d.Run(60)
	report("60 s after the failure (members should mark it dead):")

	// Round-trip latencies measured by the P0-P3 rules.
	fmt.Println("\nsample mesh latencies at m0:")
	for _, row := range nodes[0].ScanSorted("latency") {
		fmt.Printf("  to %-12s %.1f ms\n", row.Field(1).AsStr(), row.Field(2).AsFloat()*1000)
	}
}
