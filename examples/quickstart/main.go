// Quickstart: two P2 nodes running the ping-pong overlay on a
// simulated deployment. The entire "protocol" is four OverLog rules
// (p2.PingPongSource); this program just compiles them, spawns nodes,
// and reads the measured round-trip times out of the rtt table.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"p2"
)

func main() {
	plan, err := p2.Compile(p2.PingPongSource, nil)
	if err != nil {
		log.Fatal(err)
	}

	d, err := p2.NewDeployment(p2.Simulated, p2.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	alice, err := d.Spawn("alice:p2", plan)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := d.Spawn("bob:p2", plan); err != nil {
		log.Fatal(err)
	}

	// Point alice at bob; rule Q2 does the rest every second.
	alice.AddFact("pingPeer", p2.Str("alice:p2"), p2.Str("bob:p2"))

	// Watch each measurement as the dataflow derives it.
	alice.Watch("rtt", func(ev p2.WatchEvent) {
		if ev.Dir == p2.DirInserted {
			fmt.Printf("t=%6.3fs  rtt(alice -> bob) = %.1f ms\n",
				ev.Time, ev.Tuple.Field(2).AsFloat()*1000)
		}
	})

	d.Run(5) // five virtual seconds

	rows := alice.Scan("rtt")
	fmt.Printf("\nrtt table after 5 s: %d row(s)\n", len(rows))
	for _, r := range rows {
		fmt.Println("  ", r)
	}
}
