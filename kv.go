package p2

// kv.go is the Go half of the replicated key-value service: the
// OverLog rules (internal/kvs, re-exported as KVSource) do the
// routing, replication, quorum counting, and repair; this file is the
// thin client that injects kvPut/kvGet events and collects the
// kvPutResp/kvGetResp answers. One KVClient per deployment serves
// every node uniformly on both runtimes — on a simulation its results
// are a pure function of (seed, program, virtual time), bit-identical
// at any shard count; on UDP KVOp.Wait blocks until the quorum
// answers over real sockets.

import (
	"fmt"
	"sync"
	"time"

	"p2/internal/introspect"
	"p2/internal/kvs"
	"p2/internal/tuple"
	"p2/internal/val"
)

// KVSource is the key-value service in OverLog: successor-list
// replication with quorum acks, read-repair, anti-entropy leases, and
// churn-triggered re-replication, layered on the Chord spec. Compile
// it together with ChordSource:
//
//	plan, err := p2.CompileMulti(nil, p2.ChordSource, p2.KVSource)
//
// or graft it onto a running Chord node with Handle.Install.
const KVSource = kvs.Source

// SysKV names the key-value service's introspection relation; see
// SystemTables for the schema. It carries rows only on nodes running
// the KV rules.
const SysKV = introspect.KVRelation

// KVStat is one node's sysKV row in struct form (Handle.KVStats).
type KVStat = introspect.KVStat

// The service's replication parameters, as baked into KVSource's
// defines: R-way replication (the owner plus Chord's successor list),
// the ack quorum a PUT waits for, and the soft-state lease renewed by
// each anti-entropy round.
const (
	KVReplicas     = kvs.Replicas
	KVQuorum       = kvs.Quorum
	KVLeaseSeconds = kvs.LeaseSeconds
)

// KVOp is one client operation in flight or completed. Fields are
// written by the response watcher on the requester's event loop; read
// them after the operation is known complete — on a simulation after
// the Run call that delivered the response (the deployment is then
// quiescent), on UDP after Wait returns true.
type KVOp struct {
	Kind  string // "put" or "get"
	Key   string // application key; routed as Hash(Key)
	Value string // put: value written; get: value returned
	Ver   int64  // put: version written; get: version returned (0 on miss)
	Found bool   // get: the owner held the key
	Stale bool   // get: returned version predates the last quorum-acked put
	Done  bool   // response observed

	Issued    float64 // deployment clock at injection
	Completed float64 // requester's clock at the response

	expect int64 // quorum-acked version at issue — the staleness yardstick
	done   chan struct{}
}

// Latency is the virtual (simulated) or node-clock (UDP) seconds from
// issue to response; meaningful once Done.
func (op *KVOp) Latency() float64 { return op.Completed - op.Issued }

// Wait blocks until the operation completes or the timeout elapses,
// reporting completion. Use it on UDP deployments, where responses
// arrive asynchronously; on a simulation time only advances inside
// Run, so check Done between Run calls instead.
func (op *KVOp) Wait(timeout time.Duration) bool {
	select {
	case <-op.done:
		return true
	case <-time.After(timeout):
		return false
	}
}

// KVClient issues PUT/GET operations against any node of one
// deployment and tracks their outcomes. Versions are client-assigned
// and strictly increasing, so last-writer-wins resolves to issue
// order; the client also remembers the highest quorum-acked version
// per key, which is what a later GET's staleness is judged against.
// Obtain it with Deployment.KV (or use the Handle.Put/Get shorthand).
type KVClient struct {
	d *Deployment

	mu      sync.Mutex
	seq     int64
	pending map[string]*KVOp // eid -> op
	acked   map[string]int64 // key -> highest quorum-acked version
	bound   map[*Handle]bool // handles with response watchers installed
}

// KV returns the deployment's key-value client, creating it on first
// use. The client is shared: operations issued through any handle
// draw versions from one sequence.
func (d *Deployment) KV() *KVClient {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.kvClient == nil {
		d.kvClient = &KVClient{
			d:       d,
			pending: make(map[string]*KVOp),
			acked:   make(map[string]int64),
			bound:   make(map[*Handle]bool),
		}
	}
	return d.kvClient
}

// Put writes key=value through node h: the value routes to the key's
// owner, fans out to the replica set, and the operation completes
// when a write quorum has acknowledged. Call from driver context on a
// simulation (between Run calls or inside an At callback).
func (c *KVClient) Put(h *Handle, key, value string) (*KVOp, error) {
	if err := c.bind(h); err != nil {
		return nil, err
	}
	op, eid := c.newOp("put", key)
	op.Value, op.Ver = value, op.expect // expect doubles as this put's version
	addr := h.Addr()
	err := h.Inject(tuple.New(kvs.PutEvent,
		val.Str(addr), val.MakeID(Hash(key)), val.Str(value), val.Int(op.Ver),
		val.Str(addr), val.Str(eid)))
	if err != nil {
		c.drop(eid)
		return nil, err
	}
	return op, nil
}

// Get reads key through node h: the request routes to the key's owner
// and returns its copy (repairing the replica set as a side effect).
// A miss reports Found=false; Stale reports whether the result
// predates the last quorum-acked Put of the key.
func (c *KVClient) Get(h *Handle, key string) (*KVOp, error) {
	if err := c.bind(h); err != nil {
		return nil, err
	}
	op, eid := c.newOp("get", key)
	addr := h.Addr()
	err := h.Inject(tuple.New(kvs.GetEvent,
		val.Str(addr), val.MakeID(Hash(key)), val.Str(addr), val.Str(eid)))
	if err != nil {
		c.drop(eid)
		return nil, err
	}
	return op, nil
}

// newOp allocates the next sequence number and registers the pending
// op. For a put, expect is the version to write (the fresh sequence
// number); for a get, it is the key's last quorum-acked version.
func (c *KVClient) newOp(kind, key string) (*KVOp, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	eid := fmt.Sprintf("kv!%d", c.seq)
	op := &KVOp{
		Kind: kind, Key: key, Issued: c.d.Now(), done: make(chan struct{}),
	}
	if kind == "put" {
		op.expect = c.seq
	} else {
		op.expect = c.acked[key]
	}
	c.pending[eid] = op
	return op, eid
}

// drop forgets a pending op whose injection failed.
func (c *KVClient) drop(eid string) {
	c.mu.Lock()
	delete(c.pending, eid)
	c.mu.Unlock()
}

// bind installs the response watchers on a handle the first time an
// operation goes through it. Watch callbacks fire on the node's owning
// loop — concurrently with other shards — so completion goes through
// the client lock; every update is first-answer-wins or a max-merge,
// which keeps simulated results independent of shard interleaving.
func (c *KVClient) bind(h *Handle) error {
	c.mu.Lock()
	if c.bound[h] {
		c.mu.Unlock()
		return nil
	}
	c.bound[h] = true
	c.mu.Unlock()
	if err := h.Watch(kvs.PutRespEvent, c.onPutResp); err != nil {
		return err
	}
	return h.Watch(kvs.GetRespEvent, c.onGetResp)
}

// respOf filters one response delivery down to the pending op it
// answers: the tuple must arrive at its requester (field 0), carry a
// known eid (field 1), and be the first answer — quorum re-crossings
// and duplicate deliveries are dropped here. Caller holds c.mu.
func (c *KVClient) respOf(ev WatchEvent) *KVOp {
	if ev.Dir != DirReceived && ev.Dir != DirDerived {
		return nil
	}
	if ev.Node != ev.Tuple.Field(0).AsStr() {
		return nil
	}
	op := c.pending[ev.Tuple.Field(1).AsStr()]
	if op == nil || op.Done {
		return nil
	}
	return op
}

// onPutResp completes a put: kvPutResp(@Req, E, K, Ver).
func (c *KVClient) onPutResp(ev WatchEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	op := c.respOf(ev)
	if op == nil || op.Kind != "put" {
		return
	}
	op.Done, op.Completed = true, ev.Time
	if op.Ver > c.acked[op.Key] {
		c.acked[op.Key] = op.Ver
	}
	close(op.done)
}

// onGetResp completes a get: kvGetResp(@Req, E, K, V, Ver), with
// V="-", Ver=0 marking a miss.
func (c *KVClient) onGetResp(ev WatchEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	op := c.respOf(ev)
	if op == nil || op.Kind != "get" {
		return
	}
	op.Done, op.Completed = true, ev.Time
	op.Value = ev.Tuple.Field(3).AsStr()
	op.Ver = ev.Tuple.Field(4).AsInt()
	op.Found = op.Ver != 0 || op.Value != "-"
	op.Stale = op.Ver < op.expect
	close(op.done)
}

// Put is shorthand for Deployment.KV().Put through this handle.
func (h *Handle) Put(key, value string) (*KVOp, error) { return h.d.KV().Put(h, key, value) }

// Get is shorthand for Deployment.KV().Get through this handle.
func (h *Handle) Get(key string) (*KVOp, error) { return h.d.KV().Get(h, key) }

// KVStats reports the node's key-value service state (its sysKV row
// in struct form); ok is false on nodes not running the KV rules.
func (h *Handle) KVStats() (KVStat, bool) {
	var st KVStat
	var ok bool
	h.Do(func(n *Node) { st, ok = n.KVStats() })
	return st, ok
}
