package p2_test

// Cross-runtime conformance and determinism for the Deployment API.
//
// TestDeploymentConformance drives one table-driven scenario —
// event-driven ping-pong, a monitoring rule installed at runtime, and a
// mid-scenario kill — through the *identical* Deployment/Handle call
// sequence on Simulated shards=1, Simulated shards=4, and real UDP
// loopback, and asserts all three derive the same tuple multiset. The
// simulated variants must additionally be bit-identical (event counts,
// wire totals, final clock).
//
// TestChurnedDeploymentBitIdentical is the acceptance-scale determinism
// check on the public API alone: a 64-node churned Chord deployment is
// bit-identical at shards=1 and shards=4.

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"p2"
	"p2/internal/udpnet"
)

// confSpec is the event-driven ping-pong overlay: fully reactive (no
// periodics), so the derived-tuple multiset is a pure function of the
// injected events and node liveness — identical on every runtime.
const confSpec = `
	materialize(seen, infinity, infinity, keys(1,2,3)).
	P1 ping@Y(Y, X, E) :- pingEvent@X(X, Y, E).
	P2 pong@X(X, Y, E) :- ping@Y(Y, X, E).
	P3 seen@X(X, Y, E) :- pong@X(X, Y, E).
`

// confMonitor is the runtime-installed monitoring rule: a continuous
// table aggregate counting the echoes the node has collected.
const confMonitor = `
	materialize(echoTotal, infinity, 1, keys(1)).
	C1 echoTotal@N(N, count<*>) :- seen@N(N, Y, E).
`

// confResult is everything a conformance run observes, normalized to
// node indices so simulated and UDP address spaces compare equal.
type confResult struct {
	rows   []string // "nodeIdx<-peerIdx:eventID" for every seen row, sorted
	echo   int64    // node 0's installed echoTotal aggregate
	events int      // simulated: events fired across the run (0 on UDP)
	bytes  int64    // simulated: total wire bytes (0 on UDP)
	clock  float64  // simulated: final virtual time (0 on UDP)
}

// runConformance executes the scenario on d. The call sequence below is
// the point of the test: it is byte-for-byte the same for every
// runtime — only the deployment handed in differs.
func runConformance(t *testing.T, d *p2.Deployment, addrs []string) confResult {
	t.Helper()
	plan := p2.MustCompile(confSpec, nil)

	var nodes []*p2.Handle
	for _, addr := range addrs {
		h, err := d.Spawn(addr, plan)
		if err != nil {
			t.Fatalf("spawn %s: %v", addr, err)
		}
		nodes = append(nodes, h)
	}
	if err := nodes[0].Install(confMonitor); err != nil {
		t.Fatalf("install: %v", err)
	}

	res := confResult{}
	run := func(seconds float64) { res.events += d.Run(seconds) }
	// waitFor polls cond between run steps: bounded virtual time on a
	// simulated deployment, bounded wall time on UDP.
	waitFor := func(what string, cond func() bool) {
		deadline := time.Now().Add(20 * time.Second)
		for i := 0; i < 400; i++ {
			if cond() {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			run(0.25)
		}
		t.Fatalf("%s: condition never held (runtime %v)", what, d.Runtime())
	}
	ping := func(from, to int, eid string) {
		err := nodes[from].Inject(p2.NewTuple("pingEvent",
			p2.Str(addrs[from]), p2.Str(addrs[to]), p2.Str(eid)))
		if err != nil {
			t.Fatalf("inject %s: %v", eid, err)
		}
	}
	seenCount := func(i int) int { return nodes[i].TableLen("seen") }

	// Phase 1: a ring of pings plus a self-ping.
	ping(0, 1, "e1")
	ping(1, 2, "e2")
	ping(2, 0, "e3")
	ping(0, 0, "e4")
	waitFor("phase 1 echoes", func() bool {
		return seenCount(0) == 2 && seenCount(1) == 1 && seenCount(2) == 1
	})

	// Phase 2: kill node 2, then ping both the dead node (never
	// completes) and a live one (completes).
	d.Kill(addrs[2])
	ping(0, 2, "e5")
	ping(0, 1, "e6")
	waitFor("phase 2 echoes", func() bool { return seenCount(0) == 3 })
	run(2) // grace: give e5 every chance to (wrongly) complete
	waitFor("installed aggregate", func() bool {
		rows := nodes[0].Scan("echoTotal")
		return len(rows) == 1 && rows[0].Field(1).AsInt() == 3
	})

	// Collect the normalized derived-tuple multiset from the survivors.
	idx := make(map[string]int, len(addrs))
	for i, a := range addrs {
		idx[a] = i
	}
	for i, h := range nodes {
		if !h.Running() {
			continue
		}
		for _, row := range h.Scan("seen") {
			res.rows = append(res.rows,
				fmt.Sprintf("%d<-%d:%s", i, idx[row.Field(1).AsStr()], row.Field(2).AsStr()))
		}
	}
	sort.Strings(res.rows)
	if rows := nodes[0].Scan("echoTotal"); len(rows) == 1 {
		res.echo = rows[0].Field(1).AsInt()
	}
	if d.Runtime() == p2.Simulated {
		res.bytes = d.NetTotals().BytesSent
		res.clock = d.Now()
	}
	return res
}

func TestDeploymentConformance(t *testing.T) {
	// e3's echo lives on node 2, which dies in phase 2 — its state dies
	// with it, so the surviving multiset is the same on every runtime.
	want := []string{"0<-0:e4", "0<-1:e1", "0<-1:e6", "1<-2:e2"}

	results := make(map[string]confResult)
	for _, shards := range []int{1, 4} {
		for _, optimized := range []bool{false, true} {
			dopts := []p2.Option{p2.WithSeed(17), p2.WithShards(shards)}
			name := fmt.Sprintf("sim/shards=%d", shards)
			if optimized {
				dopts = append(dopts, p2.WithOptimizer(p2.OptimizerConfig{}))
				name = fmt.Sprintf("sim+opt/shards=%d", shards)
			}
			d, err := p2.NewDeployment(p2.Simulated, dopts...)
			if err != nil {
				t.Fatal(err)
			}
			results[name] = runConformance(t, d, []string{"c0:p2", "c1:p2", "c2:p2", "c3:p2"})
			d.Close()
		}
	}

	var udpAddrs []string
	for i := 0; i < 4; i++ {
		a, err := udpnet.ReserveAddr()
		if err != nil {
			t.Skipf("no loopback UDP: %v", err)
		}
		udpAddrs = append(udpAddrs, a)
	}
	du, err := p2.NewDeployment(p2.UDP, p2.WithSeed(17),
		p2.WithNodeDefaults(p2.NodeOptions{IntrospectInterval: -1}))
	if err != nil {
		t.Fatal(err)
	}
	results["udp"] = runConformance(t, du, udpAddrs)
	du.Close()

	// Every runtime derived the same tuple multiset.
	for name, r := range results {
		if got := strings.Join(r.rows, " "); got != strings.Join(want, " ") {
			t.Errorf("%s: derived multiset = %v, want %v", name, r.rows, want)
		}
		if r.echo != 3 {
			t.Errorf("%s: installed echoTotal = %d, want 3", name, r.echo)
		}
	}
	// The simulated variants are bit-identical, not merely equivalent —
	// with and without the query optimizer.
	for _, prefix := range []string{"sim", "sim+opt"} {
		s1, s4 := results[prefix+"/shards=1"], results[prefix+"/shards=4"]
		if s1.events != s4.events || s1.bytes != s4.bytes || s1.clock != s4.clock {
			t.Errorf("%s shards=1 vs 4 diverged: events %d vs %d, bytes %d vs %d, clock %v vs %v",
				prefix, s1.events, s4.events, s1.bytes, s4.bytes, s1.clock, s4.clock)
		}
	}
}

// runChurnedChord builds a 64-node churned Chord deployment through
// nothing but the public API and summarizes it exactly.
func runChurnedChord(t *testing.T, shards int) (events int, totals p2.NetTotals, digest string) {
	t.Helper()
	plan := p2.MustCompile(p2.ChordSource, nil)
	d, err := p2.NewDeployment(p2.Simulated, p2.WithSeed(5), p2.WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const landmark = "d0:p2"
	next := 0
	mint := func() string { a := fmt.Sprintf("d%d:p2", next); next++; return a }
	spawn := func(addr string) *p2.Handle {
		h, err := d.Spawn(addr, plan)
		if err != nil {
			t.Fatalf("spawn %s: %v", addr, err)
		}
		lm := "-"
		if addr != landmark {
			lm = landmark
		}
		h.AddFact("landmark", p2.Str(addr), p2.Str(lm))
		h.AddFact("join", p2.Str(addr), p2.Str(addr+"!boot"))
		return h
	}
	for i := 0; i < 64; i++ {
		addr := mint()
		d.At(float64(i)*0.05, func() { spawn(addr) })
	}
	events += d.Run(15)
	d.EnableChurn(20, func(dep *p2.Deployment, died string) *p2.Handle {
		return spawn(mint())
	}, landmark)
	events += d.Run(25)
	d.DisableChurn()
	events += d.Run(8)

	var sb strings.Builder
	for _, h := range d.Nodes() {
		sb.WriteString(h.Addr())
		sb.WriteString("->")
		if rows := h.Scan("bestSucc"); len(rows) == 1 {
			sb.WriteString(rows[0].Field(2).AsStr())
		} else {
			sb.WriteString("?")
		}
		sb.WriteString(";")
	}
	return events, d.NetTotals(), sb.String()
}

// TestChurnedDeploymentBitIdentical is the acceptance criterion: a
// 64-node churned simulated deployment built via the public API — At
// spawn staggering, EnableChurn kills and replacements through the
// barrier control lane — reports bit-identical event counts, traffic
// bytes, and final topology at 1 and 4 shards.
func TestChurnedDeploymentBitIdentical(t *testing.T) {
	e1, t1, d1 := runChurnedChord(t, 1)
	e4, t4, d4 := runChurnedChord(t, 4)
	if e1 != e4 {
		t.Errorf("events: %d (shards=1) vs %d (shards=4)", e1, e4)
	}
	if t1 != t4 {
		t.Errorf("net totals: %+v vs %+v", t1, t4)
	}
	if d1 != d4 {
		t.Errorf("ring digest diverged:\n  %s\n  %s", d1, d4)
	}
	if e1 == 0 || t1.BytesSent == 0 || !strings.Contains(d1, "->d") {
		t.Fatalf("workload too trivial: events=%d bytes=%d", e1, t1.BytesSent)
	}
}
