package p2

// The deployment-level health surface: typed conditions re-exported
// from internal/health, the structured HealthSnapshot API, and the
// Prometheus /metrics endpoint of UDP deployments (WithMetrics). The
// per-node machinery — the condition evaluator fed by every
// introspection refresh, the sysHealth system table, the transport's
// classified drop counters — lives in the engine; this file is the
// operator-facing view over it.

import (
	"fmt"
	"net"
	"net/http"
	"sort"
	"time"

	"p2/internal/health"
	"p2/internal/introspect"
	"p2/internal/transport"
)

// IsSystemRelation reports whether a relation name lives in the
// reserved "sys" namespace.
func IsSystemRelation(name string) bool { return introspect.IsReserved(name) }

// Health types, re-exported for application use.
type (
	// Condition is one evaluated health condition: type, ternary
	// status, human-readable reason, and the node time of the last
	// status transition. Conditions are recomputed on every
	// introspection refresh and mirrored into the sysHealth table.
	Condition = health.Condition
	// ConditionType names a condition in the catalogue.
	ConditionType = health.ConditionType
	// ConditionStatus is a condition's ternary state.
	ConditionStatus = health.Status
	// HealthConfig tunes the condition evaluator's thresholds; set it
	// via NodeOptions.Health.
	HealthConfig = health.Config
	// NodeHealth is one node's condition catalogue inside a snapshot.
	NodeHealth = health.NodeHealth
	// HealthSnapshot is a whole-deployment health capture (see
	// Deployment.HealthSnapshot).
	HealthSnapshot = health.Snapshot
	// DropCause classifies why the transport abandoned a tuple.
	DropCause = transport.DropCause
	// DropCounts is a per-cause drop counter vector, indexed by
	// DropCause.
	DropCounts = transport.DropCounts
)

// The condition catalogue. Converged asserts health (True is good);
// the rest assert problems (True is bad).
const (
	Converged            = health.Converged
	Partitioned          = health.Partitioned
	ChurnStorm           = health.ChurnStorm
	RetryBudgetExhausted = health.RetryBudgetExhausted
	BacklogSaturated     = health.BacklogSaturated
	KVUnderReplicated    = health.KVUnderReplicated
)

// Condition statuses.
const (
	ConditionTrue    = health.StatusTrue
	ConditionFalse   = health.StatusFalse
	ConditionUnknown = health.StatusUnknown
)

// Drop causes (see TransportConfig and the sysNet drop columns).
const (
	DropRetryExhausted  = transport.RetryExhausted
	DropSessionClosed   = transport.SessionClosed
	DropPeerDead        = transport.PeerDead
	DropBacklogOverflow = transport.BacklogOverflow
)

// ConditionTypes returns the condition catalogue in canonical order.
func ConditionTypes() []ConditionType { return health.ConditionTypes() }

// DropCauses returns every drop cause in counter order.
func DropCauses() []DropCause { return transport.DropCauses() }

// HealthMonitorSource returns the shipped OverLog monitor library:
// rules over sysHealth and sysNet that materialize healthAlarm,
// deadPeer, lossyPeer, and dropTotal relations. Install it on any live
// node with Handle.Install.
func HealthMonitorSource() string { return health.MonitorSource() }

// Conditions returns the node's most recently evaluated condition
// catalogue, in canonical order. Before the first introspection
// refresh (or with introspection disabled) every condition is Unknown.
func (h *Handle) Conditions() []Condition {
	var out []Condition
	h.Do(func(n *Node) { out = n.Conditions() })
	return out
}

// HealthSnapshot captures every live node's conditions plus the
// overlay-wide rollup, nodes sorted by address. On a simulated
// deployment call it from driver context; the result is then a pure
// function of (seed, program, virtual time) — bit-identical at every
// shard count. On UDP it reflects each node's latest refresh.
func (d *Deployment) HealthSnapshot() HealthSnapshot {
	snap := HealthSnapshot{Time: d.Now()}
	nodes := d.Nodes()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Addr() < nodes[j].Addr() })
	for _, h := range nodes {
		conds := h.Conditions()
		if conds == nil {
			continue // killed while iterating
		}
		snap.Nodes = append(snap.Nodes, NodeHealth{Addr: h.Addr(), Conditions: conds})
	}
	snap.Overlay = health.Rollup(snap.Nodes)
	return snap
}

// MetricsAddr returns the Prometheus endpoint's listen address
// ("" when WithMetrics was not given). With WithMetrics(":0") this is
// how the chosen port is discovered.
func (d *Deployment) MetricsAddr() string {
	if d.metricsLn == nil {
		return ""
	}
	return d.metricsLn.Addr().String()
}

// startMetrics binds the /metrics listener (UDP deployments only).
func (d *Deployment) startMetrics(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("p2: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", d.serveMetrics)
	d.metricsLn = ln
	d.metricsSrv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go d.metricsSrv.Serve(ln)
	return nil
}

// serveMetrics renders every live node in Prometheus text format.
func (d *Deployment) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	health.WriteMetrics(w, d.collectMetrics())
}

// collectMetrics gathers one NodeMetrics per live node, sorted by
// address. Each node is read on its owning loop (Handle.Do), so the
// values within one node are a consistent cut.
func (d *Deployment) collectMetrics() []health.NodeMetrics {
	nodes := d.Nodes()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Addr() < nodes[j].Addr() })
	out := make([]health.NodeMetrics, 0, len(nodes))
	for _, h := range nodes {
		var m health.NodeMetrics
		ok := false
		h.Do(func(n *Node) {
			m.Addr = n.Addr()
			ns := n.NodeStat()
			m.UptimeS, m.RuleFires = ns.UptimeS, ns.Events
			for _, ts := range n.TableStats() {
				if !IsSystemRelation(ts.Name) {
					m.Tuples += int64(ts.Tuples)
				}
			}
			for _, st := range n.NetStats() {
				m.Sent += st.Sent
				m.Recvd += st.Recvd
				m.Retransmits += st.Retries
				m.Cwnd += st.Cwnd
				m.Backlog += int64(st.Backlog)
				for c, v := range st.Drops {
					m.Drops[c] += v
				}
			}
			m.Conditions = n.Conditions()
			ok = true
		})
		if ok {
			out = append(out, m)
		}
	}
	return out
}
