package p2_test

// Build-and-run smoke coverage for everything `go build ./...`
// produces: the cmd/ binaries must compile, and each example main must
// execute its full scenario — tens to hundreds of virtual-time
// protocol seconds — and exit cleanly. Examples are the de facto
// integration suite for the shipped overlays, so a broken one should
// fail CI, not a user.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func goTool(t *testing.T) string {
	t.Helper()
	path, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain unavailable: %v", err)
	}
	return path
}

func TestBuildEverything(t *testing.T) {
	out, err := exec.Command(goTool(t), "build", "./...").CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./...: %v\n%s", err, out)
	}
}

func TestExamplesRunToCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("examples take a few seconds each")
	}
	go_ := goTool(t)
	bin := t.TempDir()
	for _, ex := range []string{
		"quickstart", "gossip", "linkstate", "multicast", "narada", "chord", "monitor", "kv",
	} {
		ex := ex
		t.Run(ex, func(t *testing.T) {
			t.Parallel()
			// Build then exec the binary directly: killing a timed-out
			// `go run` wrapper would orphan the example process.
			exe := filepath.Join(bin, ex)
			if out, err := exec.Command(go_, "build", "-o", exe, "./examples/"+ex).CombinedOutput(); err != nil {
				t.Fatalf("build %s: %v\n%s", ex, err, out)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			defer cancel()
			if out, err := exec.CommandContext(ctx, exe).CombinedOutput(); err != nil {
				t.Fatalf("example %s failed (ctx: %v): %v\n%s", ex, ctx.Err(), err, out)
			}
		})
	}
}

// TestHealthExampleServesMetrics starts examples/health (real UDP
// nodes plus the WithMetrics endpoint), scrapes /metrics once while it
// runs, and verifies the response parses as Prometheus text exposition
// with the per-node condition gauges and per-cause drop counters — the
// operability subsystem's acceptance path.
func TestHealthExampleServesMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns UDP nodes and sleeps through a scrape cycle")
	}
	go_ := goTool(t)
	exe := filepath.Join(t.TempDir(), "health")
	if out, err := exec.Command(go_, "build", "-o", exe, "./examples/health").CombinedOutput(); err != nil {
		t.Fatalf("build health: %v\n%s", err, out)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	// Free ports everywhere: the metrics listener picks its own and
	// prints it; the UDP base is fixed but uncommon.
	cmd := exec.CommandContext(ctx, exe,
		"-metrics", "127.0.0.1:0", "-base", "9661", "-nodes", "3", "-run", "12s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Wait()
	defer cmd.Process.Kill()

	// First line announces the endpoint.
	sc := bufio.NewScanner(stdout)
	var url string
	for sc.Scan() {
		if _, ok := strings.CutPrefix(sc.Text(), "health: metrics at "); ok {
			url = strings.TrimPrefix(sc.Text(), "health: metrics at ")
			break
		}
	}
	if url == "" {
		t.Fatalf("example never announced its metrics endpoint")
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	time.Sleep(2 * time.Second) // let the ring exchange some traffic
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("scrape: status %d, err %v", resp.StatusCode, err)
	}
	out := string(body)

	for _, want := range []string{
		`p2_condition{node="127.0.0.1:9661",type="Converged"}`,
		`p2_condition{node="127.0.0.1:9661",type="Partitioned"}`,
		`p2_drops_total{node="127.0.0.1:9661",cause="RetryExhausted"}`,
		`p2_drops_total{node="127.0.0.1:9663",cause="SessionClosed"}`,
		"# TYPE p2_condition gauge",
		"# TYPE p2_drops_total counter",
		"# TYPE p2_uptime_seconds gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if err := checkPrometheusText(out); err != nil {
		t.Fatalf("exposition format: %v\n%s", err, out)
	}
}

// checkPrometheusText is a minimal exposition-format validator: HELP /
// TYPE comments, `name{labels} value` series with balanced quotes, and
// no series before its family's TYPE line.
func checkPrometheusText(out string) error {
	typed := map[string]bool{}
	for ln, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		switch {
		case line == "":
			return fmt.Errorf("line %d: empty", ln+1)
		case strings.HasPrefix(line, "# HELP "):
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if len(f) != 4 || (f[3] != "gauge" && f[3] != "counter") {
				return fmt.Errorf("line %d: bad TYPE %q", ln+1, line)
			}
			typed[f[2]] = true
		default:
			name := line
			if i := strings.IndexByte(line, '{'); i >= 0 {
				name = line[:i]
				j := strings.LastIndexByte(line, '}')
				if j < i {
					return fmt.Errorf("line %d: unbalanced braces %q", ln+1, line)
				}
				if strings.Count(line[i+1:j], `"`)%2 != 0 {
					return fmt.Errorf("line %d: unbalanced quotes %q", ln+1, line)
				}
			} else if f := strings.Fields(line); len(f) != 2 {
				return fmt.Errorf("line %d: bad series %q", ln+1, line)
			} else {
				name = f[0]
			}
			if !typed[name] {
				return fmt.Errorf("line %d: series %q before its TYPE", ln+1, name)
			}
		}
	}
	return nil
}
