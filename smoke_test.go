package p2_test

// Build-and-run smoke coverage for everything `go build ./...`
// produces: the cmd/ binaries must compile, and each example main must
// execute its full scenario — tens to hundreds of virtual-time
// protocol seconds — and exit cleanly. Examples are the de facto
// integration suite for the shipped overlays, so a broken one should
// fail CI, not a user.

import (
	"context"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

func goTool(t *testing.T) string {
	t.Helper()
	path, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain unavailable: %v", err)
	}
	return path
}

func TestBuildEverything(t *testing.T) {
	out, err := exec.Command(goTool(t), "build", "./...").CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./...: %v\n%s", err, out)
	}
}

func TestExamplesRunToCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("examples take a few seconds each")
	}
	go_ := goTool(t)
	bin := t.TempDir()
	for _, ex := range []string{
		"quickstart", "gossip", "linkstate", "multicast", "narada", "chord", "monitor",
	} {
		ex := ex
		t.Run(ex, func(t *testing.T) {
			t.Parallel()
			// Build then exec the binary directly: killing a timed-out
			// `go run` wrapper would orphan the example process.
			exe := filepath.Join(bin, ex)
			if out, err := exec.Command(go_, "build", "-o", exe, "./examples/"+ex).CombinedOutput(); err != nil {
				t.Fatalf("build %s: %v\n%s", ex, err, out)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			defer cancel()
			if out, err := exec.CommandContext(ctx, exe).CombinedOutput(); err != nil {
				t.Fatalf("example %s failed (ctx: %v): %v\n%s", ex, ctx.Err(), err, out)
			}
		})
	}
}
