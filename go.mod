module p2

go 1.22
