package p2_test

// Regression sweep for satellite (a) of the fault lab: every Handle
// method invoked on a killed (or replaced) node must return a typed
// p2.ErrNodeDown error or a zero value — never panic, never hang. The
// sweep runs on both runtimes, and each method call is wrapped in a
// panic recovery so one bad method reports precisely.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"p2"
	"p2/internal/udpnet"
)

// sweepKilledHandle exercises every public Handle method on h, which
// the caller has already killed, and fails the test on any panic,
// non-ErrNodeDown error, or non-zero result.
func sweepKilledHandle(t *testing.T, h *p2.Handle) {
	t.Helper()
	check := func(name string, fn func() error) {
		t.Helper()
		done := make(chan error, 1)
		go func() {
			defer func() {
				if r := recover(); r != nil {
					done <- fmt.Errorf("panicked: %v", r)
				}
			}()
			done <- fn()
		}()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("%s on killed node: %v", name, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s on killed node: hung", name)
		}
	}
	wantDown := func(err error) error {
		if err == nil {
			return fmt.Errorf("returned nil error, want ErrNodeDown")
		}
		if !errors.Is(err, p2.ErrNodeDown) {
			return fmt.Errorf("error %v is not ErrNodeDown", err)
		}
		return nil
	}

	check("Do", func() error { return wantDown(h.Do(func(*p2.Node) {})) })
	check("AddFact", func() error { return wantDown(h.AddFact("landmark", p2.Str("x"), p2.Str("-"))) })
	check("Inject", func() error {
		return wantDown(h.Inject(p2.NewTuple("pingEvent", p2.Str("a"), p2.Str("b"), p2.Str("e"))))
	})
	check("Install", func() error { return wantDown(h.Install(`X1 a@N(N) :- b@N(N).`)) })
	check("Watch", func() error { return wantDown(h.Watch("seen", func(p2.WatchEvent) {})) })
	check("Scan", func() error {
		if rows := h.Scan("seen"); rows != nil {
			return fmt.Errorf("returned %d rows, want nil", len(rows))
		}
		return nil
	})
	check("ScanSorted", func() error {
		if rows := h.ScanSorted("seen"); rows != nil {
			return fmt.Errorf("returned %d rows, want nil", len(rows))
		}
		return nil
	})
	check("TableLen", func() error {
		if n := h.TableLen("seen"); n != 0 {
			return fmt.Errorf("returned %d, want 0", n)
		}
		return nil
	})
	check("TableStats", func() error {
		if s := h.TableStats(); s != nil {
			return fmt.Errorf("returned %d stats, want nil", len(s))
		}
		return nil
	})
	check("RuleStats", func() error {
		if s := h.RuleStats(); s != nil {
			return fmt.Errorf("returned %d stats, want nil", len(s))
		}
		return nil
	})
	check("PlanStats", func() error {
		if s := h.PlanStats(); s != nil {
			return fmt.Errorf("returned %d stats, want nil", len(s))
		}
		return nil
	})
	check("NetStats", func() error {
		if s := h.NetStats(); s != nil {
			return fmt.Errorf("returned %d stats, want nil", len(s))
		}
		return nil
	})
	check("NodeStat", func() error {
		if s := h.NodeStat(); s != (p2.NodeStat{}) {
			return fmt.Errorf("returned %+v, want zero", s)
		}
		return nil
	})
	check("Kill again", func() error { h.Kill(); return nil })
	if h.Running() {
		t.Error("Running() = true on killed node")
	}
	if h.Addr() == "" {
		t.Error("Addr() lost its value after kill")
	}
}

func TestKilledHandleMethodsReturnErrNodeDown(t *testing.T) {
	plan := p2.MustCompile(confSpec, nil)

	t.Run("simulated", func(t *testing.T) {
		d, err := p2.NewDeployment(p2.Simulated, p2.WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		h, err := d.Spawn("k0:p2", plan)
		if err != nil {
			t.Fatal(err)
		}
		d.Run(1)
		h.Kill()
		sweepKilledHandle(t, h)
	})

	t.Run("udp", func(t *testing.T) {
		addr, err := udpnet.ReserveAddr()
		if err != nil {
			t.Skipf("no loopback UDP: %v", err)
		}
		d, err := p2.NewDeployment(p2.UDP, p2.WithSeed(3),
			p2.WithNodeDefaults(p2.NodeOptions{IntrospectInterval: -1}))
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		h, err := d.Spawn(addr, plan)
		if err != nil {
			t.Fatal(err)
		}
		d.Run(0.2)
		h.Kill()
		sweepKilledHandle(t, h)
	})

	// A replaced node's old handle is equally dead: Replace kills the
	// incumbent before spawning the successor, and the stale handle must
	// behave exactly like a killed one.
	t.Run("replaced", func(t *testing.T) {
		d, err := p2.NewDeployment(p2.Simulated, p2.WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		old, err := d.Spawn("k0:p2", plan)
		if err != nil {
			t.Fatal(err)
		}
		d.Run(1)
		fresh, err := d.Replace("k0:p2", plan)
		if err != nil {
			t.Fatal(err)
		}
		if !fresh.Running() || fresh == old {
			t.Fatal("Replace did not mint a fresh live handle")
		}
		sweepKilledHandle(t, old)
	})
}
