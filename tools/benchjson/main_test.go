package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeBaseline(t *testing.T, results []Result) string {
	t.Helper()
	doc := Doc{Results: results}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_base.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func res(name string, eventsSec float64) Result {
	return Result{Name: name, Iters: 1, Metrics: map[string]float64{"events/sec": eventsSec}}
}

func TestCompareBaselinePasses(t *testing.T) {
	base := writeBaseline(t, []Result{res("BenchmarkA", 1000), res("BenchmarkB", 500)})
	doc := &Doc{Results: []Result{res("BenchmarkA", 950), res("BenchmarkB", 600)}}
	if !compareBaseline(doc, base, 0.10) {
		t.Fatal("a 5% dip and an improvement must pass a 10% gate")
	}
}

func TestCompareBaselineFailsOnRegression(t *testing.T) {
	base := writeBaseline(t, []Result{res("BenchmarkA", 1000)})
	doc := &Doc{Results: []Result{res("BenchmarkA", 850)}}
	if compareBaseline(doc, base, 0.10) {
		t.Fatal("a 15% events/sec regression must fail a 10% gate")
	}
}

func TestCompareBaselineSkipsUnmatchedNames(t *testing.T) {
	// Renamed/new benchmarks warn and skip — only matching names gate.
	base := writeBaseline(t, []Result{res("BenchmarkGone", 1000), res("BenchmarkA", 100)})
	doc := &Doc{Results: []Result{res("BenchmarkNew", 1), res("BenchmarkA", 99)}}
	if !compareBaseline(doc, base, 0.10) {
		t.Fatal("unmatched names must not fail the comparison")
	}
}

func TestCompareBaselineMissingFile(t *testing.T) {
	doc := &Doc{Results: []Result{res("BenchmarkA", 1)}}
	if compareBaseline(doc, filepath.Join(t.TempDir(), "nope.json"), 0.10) {
		t.Fatal("unreadable baseline must fail, not silently pass")
	}
}

func pres(name string, metrics map[string]float64) Result {
	return Result{Name: name, Iters: 1, Metrics: metrics}
}

func TestCompareBaselineFailsOnPercentileRegression(t *testing.T) {
	// p99-ms is lower-is-better: rising 15% past baseline fails a 10% gate.
	base := writeBaseline(t, []Result{pres("BenchmarkLat", map[string]float64{"p99-ms": 100})})
	doc := &Doc{Results: []Result{pres("BenchmarkLat", map[string]float64{"p99-ms": 115})}}
	if compareBaseline(doc, base, 0.10) {
		t.Fatal("a 15% p99 latency increase must fail a 10% gate")
	}
}

func TestCompareBaselinePassesOnPercentileImprovement(t *testing.T) {
	base := writeBaseline(t, []Result{pres("BenchmarkLat", map[string]float64{
		"p99-ms": 100, "kB/node": 800})})
	doc := &Doc{Results: []Result{pres("BenchmarkLat", map[string]float64{
		"p99-ms": 40, "kB/node": 300})}}
	if !compareBaseline(doc, base, 0.10) {
		t.Fatal("large improvements on lower-is-better metrics must pass")
	}
}

func TestCompareBaselineWarnsNotFailsOnAbsentMetric(t *testing.T) {
	// The baseline predates percentile reporting: the new p999-ms metric
	// has no baseline value, so it warns and skips while events/sec
	// still gates.
	base := writeBaseline(t, []Result{pres("BenchmarkMix", map[string]float64{"events/sec": 1000})})
	doc := &Doc{Results: []Result{pres("BenchmarkMix", map[string]float64{
		"events/sec": 980, "p999-ms": 42})}}
	if !compareBaseline(doc, base, 0.10) {
		t.Fatal("a metric absent from the baseline must warn, not fail")
	}
}

func TestCompareBaselineMixedDirections(t *testing.T) {
	// events/sec improved but kB/node regressed: the gate must catch the
	// lower-is-better regression even when the higher-is-better metric
	// looks great.
	base := writeBaseline(t, []Result{pres("BenchmarkMem", map[string]float64{
		"events/sec": 1000, "kB/node": 100})})
	doc := &Doc{Results: []Result{pres("BenchmarkMem", map[string]float64{
		"events/sec": 2000, "kB/node": 150})}}
	if compareBaseline(doc, base, 0.10) {
		t.Fatal("a kB/node regression must fail even when events/sec improves")
	}
}

func TestCompareBaselineIgnoresNonEventMetrics(t *testing.T) {
	base := writeBaseline(t, []Result{{Name: "BenchmarkC", Iters: 1,
		Metrics: map[string]float64{"ns/op": 100}}})
	doc := &Doc{Results: []Result{{Name: "BenchmarkC", Iters: 1,
		Metrics: map[string]float64{"ns/op": 900}}}}
	if !compareBaseline(doc, base, 0.10) {
		t.Fatal("benchmarks without events/sec are outside the gate")
	}
}
