package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeBaseline(t *testing.T, results []Result) string {
	t.Helper()
	doc := Doc{Results: results}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_base.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func res(name string, eventsSec float64) Result {
	return Result{Name: name, Iters: 1, Metrics: map[string]float64{"events/sec": eventsSec}}
}

func TestCompareBaselinePasses(t *testing.T) {
	base := writeBaseline(t, []Result{res("BenchmarkA", 1000), res("BenchmarkB", 500)})
	doc := &Doc{Results: []Result{res("BenchmarkA", 950), res("BenchmarkB", 600)}}
	if !compareBaseline(doc, base, 0.10) {
		t.Fatal("a 5% dip and an improvement must pass a 10% gate")
	}
}

func TestCompareBaselineFailsOnRegression(t *testing.T) {
	base := writeBaseline(t, []Result{res("BenchmarkA", 1000)})
	doc := &Doc{Results: []Result{res("BenchmarkA", 850)}}
	if compareBaseline(doc, base, 0.10) {
		t.Fatal("a 15% events/sec regression must fail a 10% gate")
	}
}

func TestCompareBaselineSkipsUnmatchedNames(t *testing.T) {
	// Renamed/new benchmarks warn and skip — only matching names gate.
	base := writeBaseline(t, []Result{res("BenchmarkGone", 1000), res("BenchmarkA", 100)})
	doc := &Doc{Results: []Result{res("BenchmarkNew", 1), res("BenchmarkA", 99)}}
	if !compareBaseline(doc, base, 0.10) {
		t.Fatal("unmatched names must not fail the comparison")
	}
}

func TestCompareBaselineMissingFile(t *testing.T) {
	doc := &Doc{Results: []Result{res("BenchmarkA", 1)}}
	if compareBaseline(doc, filepath.Join(t.TempDir(), "nope.json"), 0.10) {
		t.Fatal("unreadable baseline must fail, not silently pass")
	}
}

func TestCompareBaselineIgnoresNonEventMetrics(t *testing.T) {
	base := writeBaseline(t, []Result{{Name: "BenchmarkC", Iters: 1,
		Metrics: map[string]float64{"ns/op": 100}}})
	doc := &Doc{Results: []Result{{Name: "BenchmarkC", Iters: 1,
		Metrics: map[string]float64{"ns/op": 900}}}}
	if !compareBaseline(doc, base, 0.10) {
		t.Fatal("benchmarks without events/sec are outside the gate")
	}
}
