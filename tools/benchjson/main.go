// Command benchjson converts `go test -bench` output on stdin into a
// JSON document, so CI can archive one BENCH_<short-sha>.json artifact
// per commit and the performance trajectory of the simulator (events/sec,
// hops/lookup, B/s/node, datagrams/ktuple, ...) is recorded over time.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x . | go run ./tools/benchjson -o BENCH_abc1234.json
//
// Every benchmark line is parsed into its name, iteration count, and
// the full set of reported metrics (ns/op, B/op, and any custom
// b.ReportMetric units).
//
// With -baseline the run is additionally compared against an archived
// document: for every benchmark present in both, each gated metric
// (events/sec higher-is-better; latency percentiles and kB/node
// lower-is-better) may not regress more than -regress (default 10%)
// past its baseline value, which is how CI turns the trajectory
// artifact into a regression gate. Benchmarks or metrics present on
// only one side warn and skip — baselines age, and an absent metric
// must not mask the comparison of the ones that still match:
//
//	go test -run '^$' -bench . -benchtime 2x . | go run ./tools/benchjson -baseline BENCH_seed.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's parsed measurements. Shards is lifted out
// of the metrics (or the sub-benchmark name, e.g. ".../shards=8-4")
// for the sharded-simulator benchmarks, and events/sec/core is derived
// whenever events/sec and a shard count are both known, so trend
// analysis can compare parallel efficiency across commits directly.
type Result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Shards  int64              `json:"shards,omitempty"`
	Metrics map[string]float64 `json:"metrics"`
}

// finalize resolves the shard count and derives events/sec/core.
func (r *Result) finalize() {
	if s, ok := r.Metrics["shards"]; ok {
		r.Shards = int64(s)
	} else {
		for _, seg := range strings.Split(r.Name, "/") {
			// Trailing "-N" is GOMAXPROCS, not part of the shard count.
			seg = strings.TrimSpace(seg)
			if rest, ok := strings.CutPrefix(seg, "shards="); ok {
				if i := strings.IndexByte(rest, '-'); i >= 0 {
					rest = rest[:i]
				}
				if v, err := strconv.ParseInt(rest, 10, 64); err == nil {
					r.Shards = v
				}
			}
		}
	}
	if ev, ok := r.Metrics["events/sec"]; ok && r.Shards > 0 {
		if _, done := r.Metrics["events/sec/core"]; !done {
			r.Metrics["events/sec/core"] = ev / float64(r.Shards)
		}
	}
}

// Doc is the archived artifact.
type Doc struct {
	Commit    string   `json:"commit,omitempty"`
	GoOS      string   `json:"goos,omitempty"`
	GoArch    string   `json:"goarch,omitempty"`
	CPU       string   `json:"cpu,omitempty"`
	Timestamp string   `json:"timestamp"`
	Results   []Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	commit := flag.String("commit", os.Getenv("GITHUB_SHA"), "commit SHA to stamp into the document")
	allowEmpty := flag.Bool("allow-empty", false, "emit a document even when no benchmark lines were parsed")
	baseline := flag.String("baseline", "", "baseline BENCH_*.json: fail when any matching benchmark's events/sec regresses more than -regress")
	regress := flag.Float64("regress", 0.10, "fractional events/sec regression tolerated against -baseline")
	flag.Parse()

	doc := Doc{
		Commit:    *commit,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GoOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			doc.GoArch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iters, then (value, unit) pairs.
		if len(fields) < 4 || (len(fields)-2)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Iters: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		r.finalize()
		doc.Results = append(doc.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	// An empty document means the bench run silently produced nothing —
	// a broken pipeline, not a trajectory point. Refuse to archive it so
	// CI fails loudly instead of accumulating hollow artifacts.
	if len(doc.Results) == 0 && !*allowEmpty {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results parsed from stdin (use -allow-empty to override)")
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *baseline != "" {
		if !compareBaseline(&doc, *baseline, *regress) {
			os.Exit(1)
		}
	}
}

// gatedMetrics is the directional regression-gate table: which metrics
// -baseline compares, and which way "worse" points for each. Metrics
// outside this table (ns/op, B/op, shards, raw counts) are archived in
// the artifact but never gate — most of them are measurements of the
// workload, not the simulator.
var gatedMetrics = []struct {
	name         string
	higherBetter bool
}{
	{"events/sec", true},
	{"ops/sec", true},
	{"p50-ms", false},
	{"p99-ms", false},
	{"p999-ms", false},
	{"stale-frac", false},
	{"kB/node", false},
}

// compareBaseline checks the parsed run against an archived document:
// for every benchmark name present in both, each gated metric present
// on both sides may not regress more than the tolerated fraction past
// the baseline value — below it for higher-is-better metrics
// (events/sec), above it for lower-is-better ones (latency
// percentiles, kB/node). Benchmarks or gated metrics present on only
// one side are warned about and skipped — baselines age, and a
// renamed benchmark or newly reported metric must not mask the
// comparison of the ones that still match. Returns false on any
// regression beyond tolerance.
func compareBaseline(doc *Doc, path string, tol float64) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return false
	}
	var base Doc
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", path, err)
		return false
	}
	cur := make(map[string]map[string]float64, len(doc.Results))
	for _, r := range doc.Results {
		cur[r.Name] = r.Metrics
	}
	ok, compared := true, 0
	for _, b := range base.Results {
		cm, present := cur[b.Name]
		if !present {
			if gatesAny(b.Metrics) {
				fmt.Fprintf(os.Stderr, "benchjson: warning: %s in baseline but not in this run; skipped\n", b.Name)
			}
			continue
		}
		for _, g := range gatedMetrics {
			bv, inBase := b.Metrics[g.name]
			cv, inCur := cm[g.name]
			switch {
			case !inBase && !inCur:
				continue
			case !inBase:
				fmt.Fprintf(os.Stderr, "benchjson: warning: %s %s has no baseline value; skipped\n", b.Name, g.name)
				continue
			case !inCur:
				fmt.Fprintf(os.Stderr, "benchjson: warning: %s no longer reports %s; skipped\n", b.Name, g.name)
				continue
			case bv == 0:
				continue
			}
			compared++
			// delta > 0 always means "got worse".
			delta := cv/bv - 1
			if g.higherBetter {
				delta = -delta
			}
			status := "ok"
			if delta > tol {
				status = "REGRESSION"
				ok = false
			}
			fmt.Fprintf(os.Stderr, "benchjson: %-50s %-10s %12.2f -> %12.2f (%+.1f%% worse) %s\n",
				b.Name, g.name, bv, cv, delta*100, status)
		}
	}
	for _, r := range doc.Results {
		if !gatesAny(r.Metrics) {
			continue
		}
		if _, found := cur[r.Name]; found {
			if _, inBase := findResult(base.Results, r.Name); !inBase {
				fmt.Fprintf(os.Stderr, "benchjson: warning: %s has no baseline entry; skipped\n", r.Name)
			}
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: warning: no benchmark matched the baseline; nothing compared")
	}
	return ok
}

// gatesAny reports whether any gated metric is present.
func gatesAny(m map[string]float64) bool {
	for _, g := range gatedMetrics {
		if _, ok := m[g.name]; ok {
			return true
		}
	}
	return false
}

// findResult looks a benchmark up by name.
func findResult(rs []Result, name string) (Result, bool) {
	for _, r := range rs {
		if r.Name == name {
			return r, true
		}
	}
	return Result{}, false
}
