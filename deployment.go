package p2

// The Deployment API: one runtime-agnostic surface over every execution
// environment P2 supports. A Deployment owns a set of nodes executing
// compiled OverLog plans; the same Spawn / AddFact / Install / Watch /
// Kill call sequence builds the same overlay whether the runtime is the
// sharded virtual-time simulator or real UDP sockets.
//
// # Ownership model
//
// Every node is pinned to exactly one event loop for its whole life: a
// shard of the simulation coordinator (Simulated) or its own wall-clock
// loop (UDP). The Handle returned by Spawn is the only way to reach a
// node, and every Handle method serializes onto that owning loop — on a
// UDP deployment by posting to the node's loop and waiting, on a
// simulated one by running in the driver goroutine while every shard is
// quiescent. The shard-ownership rule of the parallel simulator
// (internal/eventloop/sharded.go) thus becomes part of the API
// contract: the Handle is the only path to a node, each of its methods
// runs in a context that owns the node, and the one discipline left to
// the caller is the single-driver rule below (in particular, Watch
// callbacks must not reach into other handles).
//
// A simulated Deployment is single-driver: Deployment and Handle
// methods must be called from the goroutine that calls Run — between
// Run calls, or inside an At callback (the barrier control lane), both
// of which are moments when every shard is quiescent. Watch callbacks
// are the one exception: they fire on the owning shard's goroutine
// while the simulation runs, concurrently with other shards' callbacks,
// so cross-node aggregation inside a watcher needs its own lock. A UDP
// Deployment is thread-safe throughout.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"p2/internal/engine"
	"p2/internal/eventloop"
	"p2/internal/netif"
	"p2/internal/planner"
	"p2/internal/seed"
	"p2/internal/simnet"
	"p2/internal/trace"
	"p2/internal/udpnet"
)

// Runtime selects a Deployment's execution environment.
type Runtime int

const (
	// Simulated runs every node in virtual time over the simulated
	// network, partitioned across the shards of a parallel
	// conservative-lookahead simulator. Deterministic: the same seed
	// yields bit-identical runs at every shard count.
	Simulated Runtime = iota
	// UDP runs each node on its own wall-clock event loop over real
	// UDP sockets — the deployable form of the system.
	UDP
)

func (r Runtime) String() string {
	switch r {
	case Simulated:
		return "simulated"
	case UDP:
		return "udp"
	}
	return fmt.Sprintf("runtime(%d)", int(r))
}

// Deployment errors.
var (
	// ErrClosed is returned by operations on a closed Deployment.
	ErrClosed = errors.New("p2: deployment closed")
	// ErrNodeDown is returned by every Handle operation on a killed or
	// replaced node: methods that return errors wrap it (match with
	// errors.Is), methods that return data return zero values. A dead
	// handle never panics or hangs.
	ErrNodeDown = errors.New("p2: node down")
	// ErrKilled is the former name of ErrNodeDown, kept as an alias so
	// existing errors.Is(err, ErrKilled) checks keep matching.
	ErrKilled = ErrNodeDown
)

// NetTotals aggregates traffic counters across a simulated deployment's
// nodes (see Deployment.NetTotals).
type NetTotals = simnet.Stats

// Canceler cancels a scheduled control-lane action (see Deployment.At).
type Canceler interface{ Cancel() }

// ReplaceFunc provisions the successor of a churned-out node: it is
// called with the deployment and the dead node's address and returns
// the replacement's handle (nil lets the population shrink). It runs in
// driver context — at an epoch barrier on a simulated deployment, on
// the control loop of a UDP one — so it may call Spawn, AddFact, etc.
type ReplaceFunc func(d *Deployment, died string) *Handle

// config collects the functional options of NewDeployment.
type config struct {
	seed      int64
	shards    int
	topology  *NetConfig
	transport *TransportConfig
	defines   map[string]Value
	nodeOpts  NodeOptions
	optimizer *planner.OptimizerConfig
	metrics   string // Prometheus listen address; "" disables
	faults    *netif.FaultConfig
	record    string // wire-trace file path; "" disables
}

// Option configures a Deployment.
type Option func(*config)

// WithSeed sets the master seed. Everything that shapes an individual
// node — engine randomness, simulated loss, churn session length —
// derives from (seed, address) alone, so outcomes are independent of
// event interleaving and identical at every shard count. Default 1.
func WithSeed(s int64) Option { return func(c *config) { c.seed = s } }

// WithShards sets the parallel shard count of a Simulated deployment
// (default 1, which runs the sharded machinery on the calling
// goroutine — exactly the classic single-loop arrangement). Metrics are
// bit-identical at every count. Rejected for UDP deployments.
func WithShards(p int) Option { return func(c *config) { c.shards = p } }

// WithTopology sets the simulated network topology (default: the
// paper's Emulab-style transit-stub topology). Rejected for UDP
// deployments.
func WithTopology(cfg NetConfig) Option {
	return func(c *config) { c.topology = &cfg }
}

// WithTransport sets the default transport tuning for spawned nodes;
// SpawnOpts can still override it per node.
func WithTransport(tc TransportConfig) Option {
	return func(c *config) { c.transport = &tc }
}

// WithDefines sets the symbolic constants Deployment.Compile supplies
// to the OverLog planner.
func WithDefines(defines map[string]Value) Option {
	return func(c *config) { c.defines = defines }
}

// WithNodeDefaults sets the NodeOptions (sweep interval, introspection
// interval, jitter, tracing) Spawn applies to every node. SpawnOpts
// ignores these defaults and uses its explicit options instead — with
// three exceptions that are filled in either way: a zero Seed derives
// from (Seed, addr), a nil Transport picks up WithTransport, and a nil
// Optimizer picks up WithOptimizer.
func WithNodeDefaults(o NodeOptions) Option {
	return func(c *config) { c.nodeOpts = o }
}

// WithOptimizer enables the cost-based query optimizer on every node
// the deployment spawns: rule bodies are re-ordered and filtered by
// estimated cost, identical probe prefixes are shared across rules on
// the same trigger, and each introspection refresh adaptively re-plans
// rules whose live table statistics drifted from the values their plan
// was costed with. The zero OptimizerConfig enables everything with
// default tuning; its No* fields switch individual optimizations off.
// Per-node SpawnOpts with an explicit NodeOptions.Optimizer override
// this default. Current plans surface in the sysPlan system table and
// via Handle.PlanStats.
func WithOptimizer(cfg OptimizerConfig) Option {
	return func(c *config) { c.optimizer = &cfg }
}

// WithMetrics serves Prometheus text metrics for every live node at
// http://addr/metrics (e.g. ":9090"; pass ":0" to pick a free port and
// read it back from MetricsAddr). UDP deployments only — a simulated
// deployment runs in virtual time, where a wall-clock scraper has no
// consistent moment to observe; use HealthSnapshot there instead.
func WithMetrics(addr string) Option {
	return func(c *config) { c.metrics = addr }
}

// WithFaults arms the datagram-level fault injector on every node of a
// UDP deployment: seeded drop / duplicate / reorder / corrupt faults
// below the transport, plus a deployment-wide fault plane that makes
// Partition, SetLossRate, and SetExtraLatency work on real sockets. A
// zero FaultConfig injects nothing but still enables partitions. The
// config's zero Seed derives from WithSeed. UDP deployments only — a
// simulated deployment has these faults natively (topology loss,
// Partition, and the same runtime knobs).
func WithFaults(fc FaultConfig) Option {
	return func(c *config) { c.faults = &fc }
}

// WithRecord records every datagram the deployment's nodes send and
// receive — frame bytes, addresses, per-node timestamps — to a
// versioned trace file at path, for deterministic offline replay
// through the simulator (see the README's Fault lab section). The
// recording tap sits at the wire: what lands in the file is what
// crossed the network, after any injected faults. UDP deployments only.
func WithRecord(path string) Option {
	return func(c *config) { c.record = path }
}

// Deployment is a set of P2 nodes sharing one execution environment —
// the runtime-agnostic surface over the sharded virtual-time simulator
// and real UDP. Build one with NewDeployment, populate it with Spawn,
// drive it with Run (simulated time) or let it run (UDP wall time), and
// release it with Close.
type Deployment struct {
	rt  Runtime
	cfg config

	// Simulated runtime.
	coord *eventloop.ShardedSim
	net   *simnet.Net

	// UDP runtime: a wall-clock control loop for scheduled structural
	// actions (churn deaths, At callbacks); each node owns its own loop.
	ctl *eventloop.Real
	// Fault plane (UDP + WithFaults only): shared by every node's
	// endpoint wrapper.
	faults *netif.FaultPlane
	// Wire recorder (UDP + WithRecord only).
	recorder *trace.Writer
	// Prometheus endpoint (UDP + WithMetrics only).
	metricsLn  net.Listener
	metricsSrv *http.Server

	mu      sync.Mutex
	handles map[string]*Handle // live nodes only
	order   []string           // live nodes in spawn order
	closed  bool
	// incarn counts spawns per address across the deployment's whole
	// life (never cleared on Kill): each incarnation at an address gets
	// a strictly increasing transport epoch, so peers can tell a
	// replaced node's fresh sequence space from the dead one's.
	incarn map[string]uint32

	churning     bool
	churnMean    float64
	churnRepl    ReplaceFunc
	churnCancels map[string]Canceler // per live churned address; entries drop as deaths fire

	// Key-value service client (kv.go), created lazily by KV().
	kvClient *KVClient
}

// NewDeployment creates an empty deployment on the given runtime.
func NewDeployment(rt Runtime, opts ...Option) (*Deployment, error) {
	cfg := config{seed: 1, shards: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.shards < 1 {
		cfg.shards = 1
	}
	d := &Deployment{rt: rt, cfg: cfg, handles: make(map[string]*Handle), incarn: make(map[string]uint32)}
	switch rt {
	case Simulated:
		if cfg.metrics != "" {
			return nil, fmt.Errorf("p2: WithMetrics applies to UDP deployments only (use HealthSnapshot on a simulated one)")
		}
		if cfg.faults != nil {
			return nil, fmt.Errorf("p2: WithFaults applies to UDP deployments only (a simulated topology has native loss, partitions, and latency knobs)")
		}
		if cfg.record != "" {
			return nil, fmt.Errorf("p2: WithRecord applies to UDP deployments only (a simulated run is already reproducible from its seed)")
		}
		nc := simnet.DefaultConfig()
		if cfg.topology != nil {
			nc = *cfg.topology
		}
		nc.Seed = cfg.seed
		la := nc.Lookahead()
		if la <= 0 {
			return nil, fmt.Errorf("p2: topology has no positive link latency; cannot derive a conservative lookahead")
		}
		d.coord = eventloop.NewShardedSim(cfg.shards, la)
		d.net = simnet.NewSharded(d.coord, nc)
	case UDP:
		if cfg.shards != 1 {
			return nil, fmt.Errorf("p2: WithShards applies to Simulated deployments only")
		}
		if cfg.topology != nil {
			return nil, fmt.Errorf("p2: WithTopology applies to Simulated deployments only")
		}
		d.ctl = eventloop.NewReal()
		go d.ctl.Run()
		if cfg.faults != nil {
			fc := *cfg.faults
			if fc.Seed == 0 {
				fc.Seed = cfg.seed
			}
			d.faults = netif.NewFaultPlane(fc)
		}
		if cfg.record != "" {
			w, err := trace.Create(cfg.record)
			if err != nil {
				d.ctl.Stop()
				return nil, fmt.Errorf("p2: WithRecord: %w", err)
			}
			d.recorder = w
		}
		if cfg.metrics != "" {
			if err := d.startMetrics(cfg.metrics); err != nil {
				d.ctl.Stop()
				if d.recorder != nil {
					d.recorder.Close()
				}
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("p2: unknown runtime %v", rt)
	}
	return d, nil
}

// Runtime returns the deployment's execution environment.
func (d *Deployment) Runtime() Runtime { return d.rt }

// Shards returns the parallel shard count (always 1 for UDP).
func (d *Deployment) Shards() int {
	if d.coord != nil {
		return d.coord.Shards()
	}
	return 1
}

// Seed returns the master seed.
func (d *Deployment) Seed() int64 { return d.cfg.seed }

// Compile compiles OverLog source with the deployment's defines
// (WithDefines) — a convenience so one Deployment value carries every
// parameter of an experiment.
func (d *Deployment) Compile(src string) (*Plan, error) {
	return Compile(src, d.cfg.defines)
}

// Now returns the deployment clock in seconds: virtual time on a
// simulated deployment, wall-clock seconds since creation on UDP.
func (d *Deployment) Now() float64 {
	if d.coord != nil {
		return d.coord.Now()
	}
	return d.ctl.Now()
}

// Run advances a simulated deployment by the given seconds of virtual
// time and returns the number of events fired. On a UDP deployment the
// nodes run continuously on their own loops; Run simply blocks for that
// much wall time and returns 0.
func (d *Deployment) Run(seconds float64) int {
	if d.coord != nil {
		return d.coord.RunFor(seconds)
	}
	time.Sleep(time.Duration(seconds * float64(time.Second)))
	return 0
}

// RunCtx runs the deployment until ctx is done: a simulated deployment
// advances virtual time in one-second increments, a UDP one just waits.
// It returns ctx.Err().
func (d *Deployment) RunCtx(ctx context.Context) error {
	if d.coord != nil {
		for ctx.Err() == nil {
			d.coord.RunFor(1)
		}
		return ctx.Err()
	}
	<-ctx.Done()
	return ctx.Err()
}

// At schedules fn on the deployment's structural control lane at
// deployment time t (clamped to now if past): the epoch-barrier lane of
// a simulated deployment — fn runs on the driver goroutine at the first
// barrier at or after t, while every shard is quiescent — or the
// control loop of a UDP one. This is the lane for driver-level actions
// that touch deployment-wide state: staggered Spawns, scheduled Kills,
// partitions. Callbacks may call any Deployment or Handle method.
func (d *Deployment) At(t float64, fn func()) Canceler {
	if d.coord != nil {
		return d.coord.AtBarrier(t, fn)
	}
	return d.ctl.At(t, fn)
}

// Spawn creates and starts a node at addr executing plan, with the
// deployment's default node options. The node's engine seed derives
// from (Seed, addr); on a simulated deployment the node is pinned to
// shard = domain(addr) mod Shards, on UDP it gets its own loop and
// socket (addr is the "host:port" to bind).
func (d *Deployment) Spawn(addr string, plan *Plan) (*Handle, error) {
	return d.SpawnOpts(addr, plan, d.cfg.nodeOpts)
}

// SpawnOpts is Spawn with explicit node options. A zero opts.Seed is
// replaced by the deterministic (Seed, addr) derivation; a nil
// opts.Transport picks up WithTransport.
func (d *Deployment) SpawnOpts(addr string, plan *Plan, opts NodeOptions) (*Handle, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrClosed
	}
	if d.handles[addr] != nil {
		d.mu.Unlock()
		return nil, fmt.Errorf("p2: spawn %s: already deployed", addr)
	}
	d.mu.Unlock()

	if opts.Seed == 0 {
		opts.Seed = seed.For(d.cfg.seed, "node", addr)
	}
	if opts.Transport == nil && d.cfg.transport != nil {
		tc := *d.cfg.transport
		opts.Transport = &tc
	}
	if opts.Optimizer == nil && d.cfg.optimizer != nil {
		oc := *d.cfg.optimizer
		opts.Optimizer = &oc
	}
	// Stamp this incarnation's transport epoch: strictly increasing per
	// address over the deployment's life, so a replaced node's restarted
	// sequence space is never confused with its predecessor's (the
	// counter survives Kill). Spawn order is driver-determined, so the
	// epochs — and the bytes they put on the wire — are identical at
	// every shard count.
	d.mu.Lock()
	d.incarn[addr]++
	epoch := d.incarn[addr]
	d.mu.Unlock()
	tc := DefaultTransportConfig()
	if opts.Transport != nil {
		tc = *opts.Transport
	}
	tc.Epoch = epoch
	opts.Transport = &tc

	h := &Handle{d: d, addr: addr}
	if d.coord != nil {
		h.shard = d.net.ShardOf(addr)
		h.node = engine.NewNode(addr, d.net.ShardLoop(addr), d.net, plan, opts)
		if err := h.node.Start(); err != nil {
			return nil, fmt.Errorf("p2: spawn %s: %w", addr, err)
		}
	} else {
		loop := eventloop.NewReal()
		h.loop = loop
		var nif netif.Network = udpnet.New(loop)
		if d.recorder != nil {
			// The recording tap sits at the wire, inside the fault
			// injector: what it records is what actually crossed the
			// network.
			nif = trace.WrapNetwork(nif, d.recorder, loop.Now)
		}
		if d.faults != nil {
			nif = netif.WithFaults(nif, d.faults, func(delay float64, fn func()) {
				loop.After(delay, fn)
			})
		}
		h.node = engine.NewNode(addr, loop, nif, plan, opts)
		errc := make(chan error, 1)
		loop.Post(func() { errc <- h.node.Start() })
		go loop.Run()
		if err := <-errc; err != nil {
			loop.Stop()
			return nil, fmt.Errorf("p2: spawn %s: %w", addr, err)
		}
	}
	d.mu.Lock()
	// Re-check under the lock: on a UDP deployment Close may have raced
	// in since the entry check, and registering now would leak a
	// running node (and its bound socket) into a closed deployment.
	if d.closed || d.handles[addr] != nil {
		closed := d.closed
		d.mu.Unlock()
		h.Kill()
		if closed {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("p2: spawn %s: already deployed", addr)
	}
	d.handles[addr] = h
	d.order = append(d.order, addr)
	d.mu.Unlock()
	return h, nil
}

// Node returns the live node at addr, or nil.
func (d *Deployment) Node(addr string) *Handle {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.handles[addr]
}

// Nodes returns the live nodes in spawn order. Killed nodes do not
// appear: the deployment tracks only live handles.
func (d *Deployment) Nodes() []*Handle {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*Handle, 0, len(d.order))
	for _, addr := range d.order {
		out = append(out, d.handles[addr])
	}
	return out
}

// Addrs returns the live node addresses in spawn order.
func (d *Deployment) Addrs() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// untrack removes a killed node from the live set — by handle
// identity, so killing a handle that lost a spawn race (or was already
// replaced at its address) never evicts the live occupant.
func (d *Deployment) untrack(h *Handle) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.handles[h.addr] != h {
		return
	}
	delete(d.handles, h.addr)
	for i, a := range d.order {
		if a == h.addr {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
}

// Kill crash-stops the live node at addr (no-op if unknown): its
// timers stop, its transport closes, in-flight datagrams to it vanish,
// and the deployment forgets it. Structural action — driver context on
// a simulated deployment.
func (d *Deployment) Kill(addr string) {
	if h := d.Node(addr); h != nil {
		h.Kill()
	}
}

// Replace restarts the node at addr: the running instance is killed and
// a fresh node spawned at the same address, executing plan (nil reuses
// the dead node's plan). State is not carried over — the replacement
// rejoins the overlay the way any new node would.
func (d *Deployment) Replace(addr string, plan *Plan) (*Handle, error) {
	h := d.Node(addr)
	if h == nil {
		return nil, fmt.Errorf("p2: replace %s: no such live node", addr)
	}
	if plan == nil {
		plan = h.node.Plan()
	}
	h.Kill()
	return d.Spawn(addr, plan)
}

// EnableChurn starts Bamboo-style churn: every currently-live node
// except those in exempt draws an exponentially distributed session
// length with the given mean (from its private (Seed, addr) stream, so
// the schedule is identical at every shard count), then dies through
// the structural control lane. replace, if non-nil, provisions each
// dead node's successor; returned replacements are churned in turn.
// Nodes spawned after EnableChurn (other than via replace) are not
// churned.
func (d *Deployment) EnableChurn(meanSession float64, replace ReplaceFunc, exempt ...string) {
	ex := make(map[string]bool, len(exempt))
	for _, a := range exempt {
		ex[a] = true
	}
	d.mu.Lock()
	d.churning = true
	d.churnMean = meanSession
	d.churnRepl = replace
	if d.churnCancels == nil {
		d.churnCancels = make(map[string]Canceler)
	}
	live := make([]string, len(d.order))
	copy(live, d.order)
	d.mu.Unlock()
	for _, addr := range live {
		if !ex[addr] {
			d.scheduleDeath(addr)
		}
	}
}

// DisableChurn cancels every scheduled churn death.
func (d *Deployment) DisableChurn() {
	d.mu.Lock()
	d.churning = false
	cancels := d.churnCancels
	d.churnCancels = nil
	d.mu.Unlock()
	for _, c := range cancels {
		c.Cancel()
	}
}

// forgetDeath drops addr's fired churn entry so the cancel set stays
// bounded by the live churned population.
func (d *Deployment) forgetDeath(addr string) {
	d.mu.Lock()
	delete(d.churnCancels, addr)
	d.mu.Unlock()
}

// scheduleDeath arms addr's churn timer from its private session
// stream.
func (d *Deployment) scheduleDeath(addr string) {
	d.mu.Lock()
	if !d.churning {
		d.mu.Unlock()
		return
	}
	mean := d.churnMean
	d.mu.Unlock()
	rng := rand.New(rand.NewSource(seed.For(d.cfg.seed, "session", addr)))
	session := rng.ExpFloat64() * mean
	c := d.At(d.Now()+session, func() { d.die(addr) })
	d.mu.Lock()
	if d.churning {
		d.churnCancels[addr] = c
		d.mu.Unlock()
		return
	}
	d.mu.Unlock()
	c.Cancel()
}

// die executes one churn death and provisions the replacement.
func (d *Deployment) die(addr string) {
	d.forgetDeath(addr)
	d.mu.Lock()
	alive, repl := d.churning, d.churnRepl
	d.mu.Unlock()
	if !alive {
		return
	}
	d.Kill(addr)
	if repl != nil {
		if h := repl(d, addr); h != nil {
			d.scheduleDeath(h.Addr())
		}
	}
}

// NetTotals sums traffic counters across all nodes, live and dead, of a
// simulated deployment (zero for UDP, where no global accounting
// exists — per-peer counters are available from Handle.NetStats).
func (d *Deployment) NetTotals() NetTotals {
	if d.net == nil {
		return NetTotals{}
	}
	return d.net.TotalStats()
}

// ResetNetStats zeroes the simulated network's per-node counters —
// used between an experiment's warm-up and measurement phases. No-op on
// UDP.
func (d *Deployment) ResetNetStats() {
	if d.net != nil {
		d.net.ResetStats()
	}
}

// Partition cuts or heals bidirectional connectivity between two
// nodes. Structural action — driver context on a simulated deployment.
// On UDP the cut is enforced by the WithFaults datagram layer; without
// it the real network is not ours to cut and an error is returned.
func (d *Deployment) Partition(a, b string, cut bool) error {
	if d.net != nil {
		d.net.Partition(a, b, cut)
		return nil
	}
	if d.faults != nil {
		d.faults.Partition(a, b, cut)
		return nil
	}
	return fmt.Errorf("p2: partition on a UDP deployment requires WithFaults")
}

// SetLossRate changes the per-datagram loss probability at runtime —
// the loss-burst fault knob, uniform across the deployment. Structural
// action — driver context on a simulated deployment (where the change
// stays bit-identical across shard counts); enforced by the WithFaults
// layer on UDP.
func (d *Deployment) SetLossRate(rate float64) error {
	if d.net != nil {
		d.net.SetLossRate(rate)
		return nil
	}
	if d.faults != nil {
		d.faults.SetDropRate(rate)
		return nil
	}
	return fmt.Errorf("p2: loss injection on a UDP deployment requires WithFaults")
}

// SetExtraLatency delays every datagram by secs on top of the base
// network — the latency-spike fault knob. Structural action — driver
// context on a simulated deployment; enforced by the WithFaults layer
// on UDP.
func (d *Deployment) SetExtraLatency(secs float64) error {
	if d.net != nil {
		d.net.SetExtraLatency(secs)
		return nil
	}
	if d.faults != nil {
		d.faults.SetExtraLatency(secs)
		return nil
	}
	return fmt.Errorf("p2: latency injection on a UDP deployment requires WithFaults")
}

// FaultStats returns the WithFaults injector's counters (zero without
// it — including on simulated deployments, whose native faults are
// accounted in NetTotals).
func (d *Deployment) FaultStats() FaultStats {
	if d.faults == nil {
		return FaultStats{}
	}
	return d.faults.Stats()
}

// ShardOf returns the shard that owns addr — a pure function of
// (address, topology, shard count), stable across runs and known before
// the node spawns. Always 0 on UDP.
func (d *Deployment) ShardOf(addr string) int {
	if d.net == nil {
		return 0
	}
	return d.net.ShardOf(addr)
}

// DomainOf returns addr's stub domain in the simulated topology
// (0 on UDP).
func (d *Deployment) DomainOf(addr string) int {
	if d.net == nil {
		return 0
	}
	return d.net.DomainOf(addr)
}

// Close releases the deployment: churn stops, UDP nodes and their loops
// shut down, simulator worker goroutines exit. Idempotent. The
// deployment must not be run afterwards.
func (d *Deployment) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.mu.Unlock()
	d.DisableChurn()
	if d.metricsSrv != nil {
		d.metricsSrv.Close()
	}
	if d.coord != nil {
		d.coord.Close()
		return
	}
	for _, h := range d.Nodes() {
		h.Kill()
	}
	d.ctl.Stop()
	if d.recorder != nil {
		d.recorder.Close()
	}
}

// Handle is the application's grip on one deployed node. All methods
// serialize onto the node's owning loop (see the package notes on the
// ownership model): on UDP they post to the node's loop and wait; on a
// simulated deployment they run directly in the driver goroutine, which
// owns every shard between Run calls and at barriers.
type Handle struct {
	d      *Deployment
	addr   string
	node   *engine.Node
	shard  int             // owning shard (Simulated)
	loop   *eventloop.Real // owning loop (UDP; nil when simulated)
	killed atomic.Bool
}

// Addr returns the node's network address (its identity).
func (h *Handle) Addr() string { return h.addr }

// Runtime returns the owning deployment's runtime.
func (h *Handle) Runtime() Runtime { return h.d.rt }

// Shard returns the shard that owns this node (always 0 on UDP).
func (h *Handle) Shard() int { return h.shard }

// Running reports whether the node is live (not killed).
func (h *Handle) Running() bool { return !h.killed.Load() }

// Do runs fn on the node's owning loop with the underlying engine node
// and returns once it has completed — the escape hatch for operations
// the Handle does not wrap (transport taps, direct table access).
// Everything fn touches follows the owning loop's single-threaded
// discipline. On a simulated deployment fn runs immediately in the
// driver goroutine; do not retain the *Node beyond fn. Do must not be
// called from code already running on the node's loop (a Watch
// callback, an installed rule's side effect): on UDP that would wait
// on the loop it is running on.
func (h *Handle) Do(fn func(n *Node)) error {
	if h.killed.Load() {
		return fmt.Errorf("%w: %s", ErrKilled, h.addr)
	}
	if h.loop == nil {
		fn(h.node)
		return nil
	}
	done := make(chan struct{})
	if err := h.loop.Post(func() { fn(h.node); close(done) }); err != nil {
		return fmt.Errorf("p2: %s: %w", h.addr, ErrKilled)
	}
	select {
	case <-done:
		return nil
	case <-h.loop.Stopped():
		// The loop stopped while our callback was queued. It may still
		// have squeezed into the final batch — prefer reporting success
		// if it did.
		select {
		case <-done:
			return nil
		default:
			return fmt.Errorf("p2: %s: %w", h.addr, ErrKilled)
		}
	}
}

// AddFact injects a tuple as if declared as a fact — the way
// applications hand a node its landmark, bootstrap neighbors, and
// configuration rows.
func (h *Handle) AddFact(name string, fields ...Value) error {
	return h.Do(func(n *Node) { n.AddFact(name, fields...) })
}

// Inject delivers t to the node as a local event or table row — the
// API for issuing lookups, publishes, and probes.
func (h *Handle) Inject(t *Tuple) error {
	return h.Do(func(n *Node) { n.InjectTuple(t) })
}

// Install compiles self-contained OverLog source and grafts it into
// the node's running dataflow; new rules see future events, periodics
// begin ticking, and installed tables join the sweep. Installed rules
// may join any relation the node maintains, including the sys* system
// tables. On error nothing is installed.
func (h *Handle) Install(src string) error {
	var ierr error
	if err := h.Do(func(n *Node) { ierr = n.Install(src) }); err != nil {
		return err
	}
	return ierr
}

// Watch registers fn for every event concerning the named relation.
// Callbacks fire on the node's owning loop, so they must not call
// Handle methods: on a simulated deployment that loop is the owning
// shard's goroutine during Run — concurrent with other shards'
// watchers, so cross-node aggregation must take its own lock — and on
// UDP a callback that re-enters its own handle would wait on the very
// loop it is running on. A watcher that needs node state should be
// registered inside Do and use the *Node it is handed.
func (h *Handle) Watch(name string, fn WatchFunc) error {
	return h.Do(func(n *Node) { n.Watch(name, fn) })
}

// Scan returns the rows of the named table (nil if the node has no
// such table). The returned tuples are immutable and safe to read
// after Scan returns.
func (h *Handle) Scan(table string) []*Tuple {
	var rows []*Tuple
	h.Do(func(n *Node) {
		if tb := n.Table(table); tb != nil {
			rows = tb.Scan()
		}
	})
	return rows
}

// ScanSorted is Scan in deterministic (rendered) order.
func (h *Handle) ScanSorted(table string) []*Tuple {
	var rows []*Tuple
	h.Do(func(n *Node) {
		if tb := n.Table(table); tb != nil {
			rows = tb.ScanSorted()
		}
	})
	return rows
}

// TableLen returns the named table's row count (0 if absent).
func (h *Handle) TableLen(table string) int {
	n := 0
	h.Do(func(nd *Node) {
		if tb := nd.Table(table); tb != nil {
			n = tb.Len()
		}
	})
	return n
}

// TableStats snapshots the node's per-table counters (the sysTable
// relation's Go form).
func (h *Handle) TableStats() []TableStat {
	var out []TableStat
	h.Do(func(n *Node) { out = n.TableStats() })
	return out
}

// RuleStats snapshots per-rule fire counts (sysRule).
func (h *Handle) RuleStats() []RuleStat {
	var out []RuleStat
	h.Do(func(n *Node) { out = n.RuleStats() })
	return out
}

// PlanStats snapshots the optimizer's current plan per rule (sysPlan).
// Without WithOptimizer every rule reports the textual plan: order "-",
// cost 0, no replans.
func (h *Handle) PlanStats() []PlanStat {
	var out []PlanStat
	h.Do(func(n *Node) { out = n.PlanStats() })
	return out
}

// NetStats snapshots per-peer transport counters and control state
// (sysNet).
func (h *Handle) NetStats() []NetStat {
	var out []NetStat
	h.Do(func(n *Node) { out = n.NetStats() })
	return out
}

// NodeStat snapshots the node-level gauges (sysNode).
func (h *Handle) NodeStat() NodeStat {
	var out NodeStat
	h.Do(func(n *Node) { out = n.NodeStat() })
	return out
}

// Kill crash-stops the node: timers stop, the transport closes, the
// socket (UDP) or network record (Simulated) dies, and the deployment
// forgets the handle. Idempotent. Subsequent Handle calls return
// ErrKilled-wrapped errors or zero values.
func (h *Handle) Kill() {
	if h.killed.Swap(true) {
		return
	}
	if h.loop == nil {
		h.node.Stop()
		h.d.net.Kill(h.addr)
	} else {
		loop := h.loop
		if err := loop.Post(func() { h.node.Stop(); loop.Stop() }); err == nil {
			<-loop.Stopped() // node fully stopped; socket closed
		} else {
			loop.Stop()
		}
	}
	h.d.untrack(h)
}
