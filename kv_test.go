package p2_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"p2"
	"p2/internal/chordref"
)

// kvRing boots an n-node simulated Chord+KV ring and settles it.
func kvRing(t *testing.T, n, shards int, seed int64) (*p2.Deployment, []*p2.Handle) {
	t.Helper()
	plan, err := p2.CompileMulti(nil, p2.ChordSource, p2.KVSource)
	if err != nil {
		t.Fatalf("compile chord+kv: %v", err)
	}
	d, err := p2.NewDeployment(p2.Simulated, p2.WithSeed(seed), p2.WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	var nodes []*p2.Handle
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("kv%02d:p2", i)
		h, err := d.Spawn(addr, plan)
		if err != nil {
			t.Fatal(err)
		}
		landmark := "-"
		if i > 0 {
			landmark = "kv00:p2"
		}
		h.AddFact("landmark", p2.Str(addr), p2.Str(landmark))
		h.AddFact("join", p2.Str(addr), p2.Str(addr+"!boot"))
		nodes = append(nodes, h)
		d.Run(1)
	}
	d.Run(180) // stabilize the ring before serving traffic
	return d, nodes
}

// TestKVPutGet drives the whole client surface on a settled ring:
// writes reach quorum, reads return the written value at the written
// version, overwrites supersede, misses and staleness report
// honestly, and sysKV accounts for the replicated rows.
func TestKVPutGet(t *testing.T) {
	d, nodes := kvRing(t, 16, 4, 11)

	const keys = 20
	puts := make([]*p2.KVOp, keys)
	for i := range puts {
		op, err := nodes[i%len(nodes)].Put(fmt.Sprintf("key/%d", i), fmt.Sprintf("v1/%d", i))
		if err != nil {
			t.Fatal(err)
		}
		puts[i] = op
	}
	d.Run(30)
	for i, op := range puts {
		if !op.Done {
			t.Fatalf("put %d never reached quorum", i)
		}
	}

	gets := make([]*p2.KVOp, keys)
	for i := range gets {
		op, err := nodes[(i+7)%len(nodes)].Get(fmt.Sprintf("key/%d", i))
		if err != nil {
			t.Fatal(err)
		}
		gets[i] = op
	}
	d.Run(30)
	for i, op := range gets {
		if !op.Done {
			t.Fatalf("get %d never completed", i)
		}
		if !op.Found || op.Value != fmt.Sprintf("v1/%d", i) {
			t.Fatalf("get %d: found=%v value=%q", i, op.Found, op.Value)
		}
		if op.Stale {
			t.Fatalf("get %d reported stale after its put was acked", i)
		}
		if op.Ver != puts[i].Ver {
			t.Fatalf("get %d: version %d, want the put's %d", i, op.Ver, puts[i].Ver)
		}
	}

	// Overwrite: the newer version wins and the read is not stale.
	over, err := nodes[3].Put("key/0", "v2/0")
	if err != nil {
		t.Fatal(err)
	}
	d.Run(30)
	re, err := nodes[9].Get("key/0")
	if err != nil {
		t.Fatal(err)
	}
	d.Run(30)
	if !re.Done || re.Value != "v2/0" || re.Ver != over.Ver || re.Stale {
		t.Fatalf("overwrite read: done=%v value=%q ver=%d stale=%v", re.Done, re.Value, re.Ver, re.Stale)
	}

	// Miss: a key never written reports not-found, not an error.
	miss, err := nodes[5].Get("never/written")
	if err != nil {
		t.Fatal(err)
	}
	d.Run(30)
	if !miss.Done || miss.Found || miss.Stale {
		t.Fatalf("miss: done=%v found=%v stale=%v", miss.Done, miss.Found, miss.Stale)
	}

	// sysKV accounting: the replica fan-out should put each key on
	// several nodes, and the parameters should be the spec's defines.
	totalKeys, withParams := 0, 0
	for _, h := range nodes {
		st, ok := h.KVStats()
		if !ok {
			t.Fatalf("%s runs the KV rules but reports no sysKV row", h.Addr())
		}
		totalKeys += st.Keys
		if st.Replicas == p2.KVReplicas && st.Quorum == p2.KVQuorum {
			withParams++
		}
	}
	if totalKeys < keys*p2.KVQuorum {
		t.Fatalf("only %d replicated rows across the ring for %d keys (quorum %d)", totalKeys, keys, p2.KVQuorum)
	}
	if withParams != len(nodes) {
		t.Fatalf("%d/%d nodes derived the replication parameters", withParams, len(nodes))
	}
}

// TestKVSurvivesOwnerFailure is the re-replication path end-to-end: a
// quorum-acked key outlives the failure of its owner because the
// successor list already holds copies and inherits ownership when the
// ring re-converges.
func TestKVSurvivesOwnerFailure(t *testing.T) {
	d, nodes := kvRing(t, 12, 2, 23)

	put, err := nodes[1].Put("precious", "survives")
	if err != nil {
		t.Fatal(err)
	}
	d.Run(30)
	if !put.Done {
		t.Fatal("put never reached quorum")
	}

	live := d.Addrs()
	owner := chordref.Owner(p2.Hash("precious"), live)
	d.Kill(owner)
	d.Run(90) // failure detection, stabilization, anti-entropy

	var reader *p2.Handle
	for _, h := range nodes {
		if h.Addr() != owner {
			reader = h
			break
		}
	}
	get, err := reader.Get("precious")
	if err != nil {
		t.Fatal(err)
	}
	d.Run(30)
	if !get.Done {
		t.Fatal("get after owner failure never completed")
	}
	if !get.Found || get.Value != "survives" || get.Ver != put.Ver {
		t.Fatalf("after owner failure: found=%v value=%q ver=%d (want %d)", get.Found, get.Value, get.Ver, put.Ver)
	}
	if get.Stale {
		t.Fatal("read of the inherited copy reported stale")
	}
}

// TestKVBitIdenticalAcrossShards pins the service to the simulator's
// core guarantee: the same scripted client session — including
// response times, versions, staleness, and every node's sysKV row —
// is byte-for-byte identical at 1 and 4 shards.
func TestKVBitIdenticalAcrossShards(t *testing.T) {
	session := func(shards int) string {
		d, nodes := kvRing(t, 10, shards, 31)
		var sb strings.Builder
		ops := make([]*p2.KVOp, 0, 12)
		for i := 0; i < 6; i++ {
			op, err := nodes[i].Put(fmt.Sprintf("k%d", i), fmt.Sprintf("val%d", i))
			if err != nil {
				t.Fatal(err)
			}
			ops = append(ops, op)
		}
		d.Run(25)
		for i := 0; i < 6; i++ {
			op, err := nodes[9-i].Get(fmt.Sprintf("k%d", i))
			if err != nil {
				t.Fatal(err)
			}
			ops = append(ops, op)
		}
		d.Run(25)
		for _, op := range ops {
			fmt.Fprintf(&sb, "%s %s done=%v v=%q ver=%d found=%v stale=%v t=%.6f\n",
				op.Kind, op.Key, op.Done, op.Value, op.Ver, op.Found, op.Stale, op.Completed)
		}
		rows := make([]string, 0, len(nodes))
		for _, h := range nodes {
			st, _ := h.KVStats()
			rows = append(rows, fmt.Sprintf("%s %+v", h.Addr(), st))
		}
		sort.Strings(rows)
		sb.WriteString(strings.Join(rows, "\n"))
		return sb.String()
	}
	a, b := session(1), session(4)
	if a != b {
		t.Fatalf("KV session differs across shard counts:\nshards=1:\n%s\nshards=4:\n%s", a, b)
	}
}
